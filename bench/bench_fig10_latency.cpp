// Figure 10: slowdown from injecting a fixed extra latency (2..10 cycles)
// into every versioned operation, for versioned 1-core (1T) and 32-core
// (32T) runs, relative to the no-injection baseline.
//
// Expected shape (paper): up to ~16% slowdown at +10 cycles, much milder at
// +2..4; parallel runs and miss-dominated workloads are less sensitive
// ("frequently accessing the LLC reduces the effect of L1 latency").
#include <cstdio>
#include <functional>
#include <iterator>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "driver.hpp"
#include "workloads/binary_tree.hpp"
#include "workloads/hash_table.hpp"
#include "workloads/levenshtein.hpp"
#include "workloads/linked_list.hpp"
#include "workloads/matmul.hpp"
#include "workloads/rb_tree.hpp"

namespace osim {
namespace {

using bench::CellResult;
using bench::Driver;
using bench::fmt;
using bench::make_config;

const Cycles kInject[] = {0, 2, 4, 6, 8, 10};

MachineConfig config_with_inject(int cores, Cycles extra) {
  MachineConfig c = make_config(cores);
  c.ostruct.injected_latency = extra;
  return c;
}

/// One table line: a cell per injected latency for one (workload, cores).
struct Line {
  std::string label;
  std::vector<std::size_t> cells;
};

Line add_sweep(Driver& driver, const std::string& label,
               std::function<CellResult(Cycles)> fn) {
  Line ln{label, {}};
  for (Cycles extra : kInject) {
    ln.cells.push_back(
        driver.add(label + "/+" + std::to_string(extra) + "cyc",
                   [fn, extra] { return fn(extra); }));
  }
  return ln;
}

template <typename ParFn>
void add_par(Driver& driver, std::vector<Line>& lines, const char* name,
             ParFn par) {
  lines.push_back(
      add_sweep(driver, std::string(name) + " 1T", [par](Cycles extra) {
        Env env(config_with_inject(1, extra));
        const RunResult r = par(env, 1);
        return bench::cell_result(env, r.cycles, r.checksum);
      }));
  lines.push_back(
      add_sweep(driver, std::string(name) + " 32T", [par](Cycles extra) {
        Env env(config_with_inject(32, extra));
        const RunResult r = par(env, 32);
        return bench::cell_result(env, r.cycles, r.checksum);
      }));
}

void print_line(Driver& driver, const Line& ln) {
  const double base = static_cast<double>(driver.result(ln.cells[0]).cycles);
  const std::uint64_t sum = driver.result(ln.cells[0]).checksum;
  std::vector<std::string> cells{ln.label};
  for (std::size_t i = 1; i < std::size(kInject); ++i) {
    const CellResult& r = driver.result(ln.cells[i]);
    // Negative speedup (slowdown) vs the no-injection run, as in Fig. 10.
    cells.push_back(fmt(base / static_cast<double>(r.cycles) - 1.0, 3));
    driver.check(ln.label + ": checksum invariant across injected latency",
                 r.checksum == sum);
  }
  bench::row(cells, 13);
}

}  // namespace
}  // namespace osim

int main(int argc, char** argv) {
  using namespace osim;
  using namespace osim::bench;
  const Options opt = Options::parse(argc, argv);
  require_inline_exec(opt, argv[0]);
  require_paper_gc(opt, argv[0]);
  const Scale scale = opt.scale;
  Driver driver("fig10_latency", opt);

  struct DsCase {
    const char* name;
    RunResult (*par)(Env&, const DsSpec&, int);
    int base_ops;
  };
  const DsCase cases[] = {
      {"linked_list", linked_list_versioned, 160},
      {"binary_tree", binary_tree_versioned, 1200},
      {"hash_table", hash_table_versioned, 1200},
      {"rb_tree", rb_tree_versioned, 800},
  };
  std::vector<Line> lines;
  for (const DsCase& c : cases) {
    DsSpec spec;
    spec.initial_size = 10000;
    spec.reads_per_write = 4;
    spec.ops = scale.ops(c.base_ops);
    auto par = c.par;
    add_par(driver, lines, c.name, [par, spec](Env& env, int cores) {
      return par(env, spec, cores);
    });
  }
  {
    LevSpec spec;
    spec.n = scale.dim(600);
    add_par(driver, lines, "levenshtein", [spec](Env& env, int cores) {
      return levenshtein_versioned(env, spec, cores);
    });
  }
  {
    MatmulSpec spec;
    spec.n = scale.dim(72);
    add_par(driver, lines, "matrix_mul", [spec](Env& env, int cores) {
      return matmul_versioned(env, spec, cores);
    });
  }

  driver.run_all();

  std::printf(
      "Figure 10: relative speedup (negative = slowdown) when injecting\n"
      "2..10 extra cycles into every versioned operation\n\n");
  rule(6, 13);
  row({"run", "+2cyc", "+4cyc", "+6cyc", "+8cyc", "+10cyc"}, 13);
  rule(6, 13);
  for (const Line& ln : lines) print_line(driver, ln);
  rule(6, 13);
  std::printf(
      "\nPaper reference (Fig. 10): at most ~16%% slowdown at +10 cycles,\n"
      "milder at small injections; sensitivity shrinks with parallelism.\n");
  return driver.finish();
}
