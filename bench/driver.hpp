// Shared experiment driver for the figure benches.
//
// Every bench used to run its (workload x config x mix) grid serially
// inside its printing code. The driver splits that into phases:
//
//   1. register every experiment cell up front (Driver::add),
//   2. run them all — fanned out across host threads (sim/host_pool.hpp);
//      each cell builds, runs, and tears down its own Env/Machine, so the
//      simulated cycles, stats, and checksums are bit-identical for any
//      --threads value,
//   3. read results back in registration order and print the tables,
//   4. finish(): verify recorded invariants (checksum matches), print the
//      wall-clock summary, and write/merge the machine-readable JSON.
//
// The JSON file maps bench name -> { scale, threads, wall_seconds, cells,
// checks }; running several benches with the same --json path accumulates
// all of them into one BENCH_results.json.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "json.hpp"
#include "sim/types.hpp"

namespace osim::analysis {
class Checker;
}  // namespace osim::analysis

namespace osim::bench {

struct CellResult {
  Cycles cycles = 0;
  std::uint64_t checksum = 0;
  double wall_seconds = 0.0;  ///< host time for this cell (driver-filled)
  /// Backend that produced this cell ("timed" / "functional"); cell_result
  /// records the cell Env's own backend, so mixed-backend benches label
  /// each cell correctly. Empty = fall back to the bench-wide --backend.
  std::string backend;
  /// Execution mode of the cell ("inline" / "concurrent"); empty = inline.
  std::string exec;
  /// GC policy behind the cell ("paper" / "bounded"); cell_result records
  /// the cell Env's own policy, so policy-comparison benches label each
  /// cell correctly. Empty = fall back to the bench-wide --gc.
  std::string gc;
  /// Concurrent cells: versioned ISA ops executed, measured host seconds of
  /// the parallel section, and worker-thread count. ops/work_seconds is the
  /// throughput the scaling tables report; wall_seconds also covers cell
  /// setup, so it is not the number to divide by.
  std::uint64_t ops = 0;
  double work_seconds = 0.0;
  int conc_threads = 0;
  /// Registry snapshot for the cell's machine (counters by "component/name",
  /// per-core vectors, histograms); lands in the JSON cell record.
  Json metrics;
  /// osim-check verdict (--check runs only). `check` is the JSON schema-2
  /// extension written into the cell record: {errors, warnings, total,
  /// findings: [...]}.
  bool checked = false;
  std::uint64_t check_errors = 0;
  Json check;
};

/// One experiment cell: runs on some host thread, owns its whole simulation.
using CellFn = std::function<CellResult()>;

/// Serialize every metric of `reg` (see CellResult::metrics).
Json metrics_json(const telemetry::MetricRegistry& reg);

/// Fold `checker`'s verdict into `r`: runs the end-of-run pass and writes
/// the schema-2 check record (call once per cell). Shared by every
/// checker-attaching cell — Env-owned checkers (harvest_check) and tools
/// that attach their own sink via analysis::attach_checker.
void fill_check(analysis::Checker& checker, CellResult& r);

/// Fold the cell Env's osim-check verdict into `r` (no-op when checking is
/// off). Runs the checker's end-of-run pass, so call once per cell.
void harvest_check(Env& env, CellResult& r);

/// Standard cell epilogue: cycles + checksum + the machine's metrics +
/// the osim-check verdict when --check is on.
inline CellResult cell_result(Env& env, Cycles cycles,
                              std::uint64_t checksum) {
  CellResult r;
  r.cycles = cycles;
  r.checksum = checksum;
  r.backend = to_string(env.config().backend);
  r.gc = to_string(env.config().ostruct.gc_policy);
  r.metrics = metrics_json(env.metrics());
  harvest_check(env, r);
  return r;
}

class Driver {
 public:
  Driver(std::string bench_name, Options options);

  /// Register a cell; `name` keys it in tables and JSON (e.g.
  /// "linked_list/cores=8"). Returns a handle for result().
  std::size_t add(std::string name, CellFn fn);

  /// Run every registered cell to completion. Safe to call repeatedly; only
  /// cells added since the last run are executed (so a bench may register,
  /// run, and read results in stages if a later grid depends on earlier
  /// results).
  void run_all();

  /// Result of cell `handle`; valid after run_all().
  const CellResult& result(std::size_t handle) const;

  /// Record a named invariant. Failures are printed by finish() and make it
  /// return (and the process exit) non-zero — this is what lets a CI smoke
  /// run fail on checksum mismatches.
  void check(const std::string& what, bool ok);

  /// Wall-clock seconds spent inside run_all() so far.
  double total_wall_seconds() const { return total_wall_; }

  /// Print the wall-clock summary, write the JSON file if requested, and
  /// return the process exit code (0 iff every check passed).
  int finish();

 private:
  struct Cell {
    std::string name;
    CellFn fn;
    CellResult result;
    bool done = false;
  };
  struct Check {
    std::string what;
    bool ok;
  };

  std::string name_;
  Options opt_;
  std::vector<Cell> cells_;
  std::vector<Check> checks_;
  double total_wall_ = 0.0;
};

}  // namespace osim::bench
