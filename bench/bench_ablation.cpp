// Ablation study of the microarchitectural design choices (beyond the
// paper's own Figs. 9/10 and Sec. IV-F):
//
//   no-compress   — compressed version blocks disabled: every versioned
//                   access takes the full-lookup path (paper Sec. III-A
//                   motivates compression with the single-probe direct
//                   access).
//   no-pollute    — cache-pollution avoidance disabled: every block touched
//                   during a list walk is installed in L1, evicting hot
//                   lines ("cold versions take the place of hot ones").
//   inplace-comp  — the paper's future-work variant: remote compressed
//                   lines are patched in situ by the extended coherence
//                   message instead of being discarded.
//
// Reported: cycles relative to the baseline configuration (higher = faster)
// for a single-core and a 32-core versioned run of each workload.
#include <cstdio>
#include <functional>

#include "bench_util.hpp"
#include "workloads/binary_tree.hpp"
#include "workloads/linked_list.hpp"

namespace osim {
namespace {

using bench::fmt;
using bench::Scale;

struct Variant {
  const char* name;
  void (*apply)(OStructConfig&);
};

const Variant kVariants[] = {
    {"baseline", [](OStructConfig&) {}},
    {"no-compress", [](OStructConfig& c) { c.enable_compression = false; }},
    {"no-pollute", [](OStructConfig& c) { c.pollution_avoidance = false; }},
    {"inplace-comp", [](OStructConfig& c) { c.inplace_comp_update = true; }},
};

void sweep(const std::string& label, int cores,
           const std::function<Cycles(const MachineConfig&)>& run) {
  std::vector<Cycles> cycles;
  for (const Variant& v : kVariants) {
    MachineConfig c;
    c.num_cores = cores;
    v.apply(c.ostruct);
    cycles.push_back(run(c));
  }
  std::vector<std::string> cells{label};
  for (std::size_t i = 0; i < std::size(kVariants); ++i) {
    cells.push_back(fmt(static_cast<double>(cycles[0]) / cycles[i], 3));
  }
  bench::row(cells, 13);
}

}  // namespace
}  // namespace osim

int main(int argc, char** argv) {
  using namespace osim;
  using namespace osim::bench;
  const Scale scale = Scale::parse(argc, argv);

  std::printf(
      "Ablation: performance relative to the baseline configuration\n"
      "(>1 would mean the variant is faster; large read-intensive runs)\n\n");
  rule(5, 13);
  row({"run", "baseline", "no-compress", "no-pollute", "inplace-comp"}, 13);
  rule(5, 13);

  {
    DsSpec spec;
    spec.initial_size = 10000;
    spec.reads_per_write = 4;
    spec.ops = scale.ops(160);
    sweep("linked_list 1T", 1, [&](const MachineConfig& c) {
      Env env(c);
      return linked_list_versioned(env, spec, c.num_cores).cycles;
    });
    sweep("linked_list 32T", 32, [&](const MachineConfig& c) {
      Env env(c);
      return linked_list_versioned(env, spec, c.num_cores).cycles;
    });
  }
  {
    DsSpec spec;
    spec.initial_size = 10000;
    spec.reads_per_write = 4;
    spec.ops = scale.ops(1200);
    sweep("binary_tree 1T", 1, [&](const MachineConfig& c) {
      Env env(c);
      return binary_tree_versioned(env, spec, c.num_cores).cycles;
    });
    sweep("binary_tree 32T", 32, [&](const MachineConfig& c) {
      Env env(c);
      return binary_tree_versioned(env, spec, c.num_cores).cycles;
    });
  }
  rule(5, 13);
  std::printf(
      "\nExpected: no-compress hurts single-core runs most (direct access\n"
      "is the paper's fast path); no-pollute hurts long-walk workloads;\n"
      "inplace-comp helps multicore runs by preserving remote direct "
      "access.\n");
  return 0;
}
