// Ablation study of the microarchitectural design choices (beyond the
// paper's own Figs. 9/10 and Sec. IV-F):
//
//   no-compress   — compressed version blocks disabled: every versioned
//                   access takes the full-lookup path (paper Sec. III-A
//                   motivates compression with the single-probe direct
//                   access).
//   no-pollute    — cache-pollution avoidance disabled: every block touched
//                   during a list walk is installed in L1, evicting hot
//                   lines ("cold versions take the place of hot ones").
//   inplace-comp  — the paper's future-work variant: remote compressed
//                   lines are patched in situ by the extended coherence
//                   message instead of being discarded.
//
// Reported: cycles relative to the baseline configuration (higher = faster)
// for a single-core and a 32-core versioned run of each workload.
#include <cstdio>
#include <functional>
#include <iterator>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "driver.hpp"
#include "workloads/binary_tree.hpp"
#include "workloads/linked_list.hpp"

namespace osim {
namespace {

using bench::CellResult;
using bench::Driver;
using bench::fmt;

struct Variant {
  const char* name;
  void (*apply)(OStructConfig&);
};

const Variant kVariants[] = {
    {"baseline", [](OStructConfig&) {}},
    {"no-compress", [](OStructConfig& c) { c.enable_compression = false; }},
    {"no-pollute", [](OStructConfig& c) { c.pollution_avoidance = false; }},
    {"inplace-comp", [](OStructConfig& c) { c.inplace_comp_update = true; }},
};

/// One table line: a cell per variant for one (workload, cores) pair.
struct Line {
  std::string label;
  std::vector<std::size_t> cells;
};

Line add_sweep(Driver& driver, const std::string& label, int cores,
               std::function<CellResult(const MachineConfig&)> run) {
  Line ln{label, {}};
  for (const Variant& v : kVariants) {
    MachineConfig c;
    c.num_cores = cores;
    v.apply(c.ostruct);
    ln.cells.push_back(
        driver.add(label + "/" + v.name, [run, c] { return run(c); }));
  }
  return ln;
}

void print_line(Driver& driver, const Line& ln) {
  const Cycles base = driver.result(ln.cells[0]).cycles;
  const std::uint64_t sum = driver.result(ln.cells[0]).checksum;
  std::vector<std::string> cells{ln.label};
  for (std::size_t h : ln.cells) {
    const CellResult& r = driver.result(h);
    cells.push_back(fmt(static_cast<double>(base) / r.cycles, 3));
    driver.check(ln.label + ": checksum invariant across variants",
                 r.checksum == sum);
  }
  bench::row(cells, 13);
}

}  // namespace
}  // namespace osim

int main(int argc, char** argv) {
  using namespace osim;
  using namespace osim::bench;
  const Options opt = Options::parse(argc, argv);
  require_inline_exec(opt, argv[0]);
  require_paper_gc(opt, argv[0]);
  const Scale scale = opt.scale;
  Driver driver("ablation", opt);

  std::vector<Line> lines;
  {
    DsSpec spec;
    spec.initial_size = 10000;
    spec.reads_per_write = 4;
    spec.ops = scale.ops(160);
    auto run = [spec](const MachineConfig& c) {
      Env env(bench::with_cell_trace(c));
      const RunResult r = linked_list_versioned(env, spec, c.num_cores);
      return bench::cell_result(env, r.cycles, r.checksum);
    };
    lines.push_back(add_sweep(driver, "linked_list 1T", 1, run));
    lines.push_back(add_sweep(driver, "linked_list 32T", 32, run));
  }
  {
    DsSpec spec;
    spec.initial_size = 10000;
    spec.reads_per_write = 4;
    spec.ops = scale.ops(1200);
    auto run = [spec](const MachineConfig& c) {
      Env env(bench::with_cell_trace(c));
      const RunResult r = binary_tree_versioned(env, spec, c.num_cores);
      return bench::cell_result(env, r.cycles, r.checksum);
    };
    lines.push_back(add_sweep(driver, "binary_tree 1T", 1, run));
    lines.push_back(add_sweep(driver, "binary_tree 32T", 32, run));
  }

  driver.run_all();

  std::printf(
      "Ablation: performance relative to the baseline configuration\n"
      "(>1 would mean the variant is faster; large read-intensive runs)\n\n");
  rule(5, 13);
  row({"run", "baseline", "no-compress", "no-pollute", "inplace-comp"}, 13);
  rule(5, 13);
  for (const Line& ln : lines) print_line(driver, ln);
  rule(5, 13);
  std::printf(
      "\nExpected: no-compress hurts single-core runs most (direct access\n"
      "is the paper's fast path); no-pollute hurts long-walk workloads;\n"
      "inplace-comp helps multicore runs by preserving remote direct "
      "access.\n");
  return driver.finish();
}
