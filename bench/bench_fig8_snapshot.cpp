// Figure 8: snapshot isolation — versioned binary tree vs an unversioned
// binary tree protected by a read-write lock.
//
// Paper setup: initial tree size 10000; scans and inserts in a 3:1 ratio;
// scan ranges 1 (simple get), 8 and 64; 4..32 cores. "Above 1 means the
// versioned implementation runs faster."
//
// Expected shape (paper): the unversioned tree wins at low core counts (the
// versioning overhead), the versioned tree overtakes as cores grow because
// scans overlap inserts (average versioned self-speedup 12.2 vs 7.9 for the
// rwlock tree; versioned wins by ~16% on average at scale).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "driver.hpp"
#include "workloads/binary_tree.hpp"

namespace osim {
namespace {

using bench::CellResult;
using bench::Driver;
using bench::fmt;
using bench::make_config;

const int kCoreSweep[] = {1, 4, 8, 16, 32};

struct Range {
  int range;
  std::vector<std::size_t> ver;  // one handle per core count
  std::vector<std::size_t> rw;
};

}  // namespace
}  // namespace osim

int main(int argc, char** argv) {
  using namespace osim;
  using namespace osim::bench;
  const Options opt = Options::parse(argc, argv);
  require_inline_exec(opt, argv[0]);
  require_paper_gc(opt, argv[0]);
  const Scale scale = opt.scale;
  Driver driver("fig8_snapshot", opt);

  std::vector<Range> ranges;
  for (int range : {1, 8, 64}) {
    DsSpec spec;
    spec.initial_size = 10000;
    spec.reads_per_write = 3;
    spec.scan_range = range;
    spec.ops = scale.ops(1500);

    Range r;
    r.range = range;
    for (int cores : kCoreSweep) {
      const std::string key =
          "range=" + std::to_string(range) + "/cores=" + std::to_string(cores);
      r.ver.push_back(driver.add(key + "/versioned", [spec, cores] {
        Env env(make_config(cores));
        const RunResult res = binary_tree_versioned(env, spec, cores);
        return bench::cell_result(env, res.cycles, res.checksum);
      }));
      r.rw.push_back(driver.add(key + "/rwlock", [spec, cores] {
        Env env(make_config(cores));
        const RunResult res = binary_tree_rwlock(env, spec, cores);
        return bench::cell_result(env, res.cycles, res.checksum);
      }));
    }
    ranges.push_back(std::move(r));
  }

  driver.run_all();

  std::printf(
      "Figure 8: performance ratio, versioned tree / rwlock tree\n"
      "(tree size 10000, scans:inserts 3:1; >1 means versioned is faster)\n"
      "\n");
  rule(6, 12);
  row({"scan range", "1 core", "4 cores", "8 cores", "16 cores", "32 cores"},
      12);
  rule(6, 12);

  double ver_self = 0.0, rw_self = 0.0;
  int self_count = 0;
  for (const Range& r : ranges) {
    std::vector<std::string> cells{"range " + std::to_string(r.range)};
    for (std::size_t i = 0; i < r.ver.size(); ++i) {
      const Cycles ver = driver.result(r.ver[i]).cycles;
      const Cycles rw = driver.result(r.rw[i]).cycles;
      cells.push_back(fmt(static_cast<double>(rw) / ver));
    }
    row(cells, 12);
    // Self-speedup from the 1-core entry (index 0) to the 32-core entry.
    ver_self += static_cast<double>(driver.result(r.ver.front()).cycles) /
                driver.result(r.ver.back()).cycles;
    rw_self += static_cast<double>(driver.result(r.rw.front()).cycles) /
               driver.result(r.rw.back()).cycles;
    ++self_count;
  }
  rule(6, 12);
  std::printf(
      "\nAvg. self speedup (1 -> 32 cores): versioned = %.1f, "
      "unversioned/rwlock = %.1f\n",
      ver_self / self_count, rw_self / self_count);
  std::printf(
      "Paper reference (Fig. 8): versioned below 1.0 on one core, above 1.0\n"
      "at scale (+16%% average); self-speedups 12.2 (versioned) vs 7.9 "
      "(rwlock).\n");
  return driver.finish();
}
