// Figure 8: snapshot isolation — versioned binary tree vs an unversioned
// binary tree protected by a read-write lock.
//
// Paper setup: initial tree size 10000; scans and inserts in a 3:1 ratio;
// scan ranges 1 (simple get), 8 and 64; 4..32 cores. "Above 1 means the
// versioned implementation runs faster."
//
// Expected shape (paper): the unversioned tree wins at low core counts (the
// versioning overhead), the versioned tree overtakes as cores grow because
// scans overlap inserts (average versioned self-speedup 12.2 vs 7.9 for the
// rwlock tree; versioned wins by ~16% on average at scale).
#include <cstdio>

#include "bench_util.hpp"
#include "workloads/binary_tree.hpp"

namespace osim {
namespace {

using bench::fmt;
using bench::make_config;
using bench::Scale;

const int kCoreSweep[] = {1, 4, 8, 16, 32};

}  // namespace
}  // namespace osim

int main(int argc, char** argv) {
  using namespace osim;
  using namespace osim::bench;
  const Scale scale = Scale::parse(argc, argv);

  std::printf(
      "Figure 8: performance ratio, versioned tree / rwlock tree\n"
      "(tree size 10000, scans:inserts 3:1; >1 means versioned is faster)\n"
      "\n");
  rule(6, 12);
  row({"scan range", "1 core", "4 cores", "8 cores", "16 cores", "32 cores"},
      12);
  rule(6, 12);

  double ver_self = 0.0, rw_self = 0.0;
  int self_count = 0;

  for (int range : {1, 8, 64}) {
    DsSpec spec;
    spec.initial_size = 10000;
    spec.reads_per_write = 3;
    spec.scan_range = range;
    spec.ops = scale.ops(1500);

    std::vector<std::string> cells{"range " + std::to_string(range)};
    Cycles ver1 = 0, rw1 = 0, ver32 = 0, rw32 = 0;
    for (int cores : kCoreSweep) {
      Env ver_env(make_config(cores));
      const Cycles ver = binary_tree_versioned(ver_env, spec, cores).cycles;
      Env rw_env(make_config(cores));
      const Cycles rw = binary_tree_rwlock(rw_env, spec, cores).cycles;
      if (cores == 1) {
        ver1 = ver;
        rw1 = rw;
      }
      if (cores == 32) {
        ver32 = ver;
        rw32 = rw;
      }
      cells.push_back(fmt(static_cast<double>(rw) / ver));
    }
    row(cells, 12);
    ver_self += static_cast<double>(ver1) / ver32;
    rw_self += static_cast<double>(rw1) / rw32;
    ++self_count;
  }
  rule(6, 12);
  std::printf(
      "\nAvg. self speedup (1 -> 32 cores): versioned = %.1f, "
      "unversioned/rwlock = %.1f\n",
      ver_self / self_count, rw_self / self_count);
  std::printf(
      "Paper reference (Fig. 8): versioned below 1.0 on one core, above 1.0\n"
      "at scale (+16%% average); self-speedups 12.2 (versioned) vs 7.9 "
      "(rwlock).\n");
  return 0;
}
