// Section IV-F: garbage collection overhead.
//
// Paper setup: a sequential workload of 1000 operations on a sorted linked
// list with 10 elements (the small list magnifies version allocation).
// Three configurations are compared:
//   tight   — a free list small enough to trigger many GC phases,
//   ample   — enough free version blocks to never collect,
//   nosort  — ample, with version-block list sorting disabled.
// Paper result: tight is only ~0.1% slower than ample, which is itself
// ~0.1% slower than nosort (versions are created in order, so sorting does
// almost no work — but it is what enables the GC).
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "driver.hpp"
#include "workloads/linked_list.hpp"

namespace osim {
namespace {

using bench::CellResult;
using bench::Driver;
using bench::fmt;
using bench::make_config;

/// Machine-wide counter out of a cell's metric snapshot (0 when absent).
std::uint64_t metric(const CellResult& r, const std::string& key) {
  const bench::Json* m = r.metrics.find(key);
  return m == nullptr ? 0 : m->as_u64();
}

}  // namespace
}  // namespace osim

int main(int argc, char** argv) {
  using namespace osim;
  using namespace osim::bench;
  const Options opt = Options::parse(argc, argv);
  require_inline_exec(opt, argv[0]);
  const Scale scale = opt.scale;
  Driver driver("gc_overhead", opt);

  DsSpec spec;
  spec.initial_size = 10;
  spec.ops = scale.ops(1000);
  spec.reads_per_write = 1;  // write-heavy: every second op allocates blocks

  MachineConfig tight = make_config(1);
  tight.ostruct.initial_pool_blocks = 80;
  tight.ostruct.trap_grow_blocks = 32;
  tight.ostruct.gc_watermark = 64;

  MachineConfig ample = make_config(1);
  ample.ostruct.initial_pool_blocks = 1 << 20;
  ample.ostruct.gc_watermark = 0;  // never collect

  MachineConfig nosort = ample;
  nosort.ostruct.sorted_lists = false;

  // GC counters ride along in each cell's metric snapshot.
  const MachineConfig configs[3] = {tight, ample, nosort};
  const char* names[3] = {"tight", "ample", "no-sorting"};
  std::size_t handles[3];
  for (int i = 0; i < 3; ++i) {
    const MachineConfig config = configs[i];
    handles[i] = driver.add(names[i], [config, spec] {
      Env env(with_cell_trace(config));
      const RunResult r = linked_list_versioned(env, spec, /*cores=*/1);
      return bench::cell_result(env, r.cycles, r.checksum);
    });
  }

  // Head-to-head GC policy comparison: the tight configuration once under
  // each policy, pinned explicitly (independent of --gc, which only steers
  // the three paper-table cells above). Same workload, same pool pressure;
  // what differs is when shadowed blocks come back.
  const GcPolicyKind pinned[2] = {GcPolicyKind::kPaper, GcPolicyKind::kBounded};
  const char* pinned_names[2] = {"tight/gc=paper", "tight/gc=bounded"};
  std::size_t pinned_handles[2];
  for (int i = 0; i < 2; ++i) {
    const GcPolicyKind gc = pinned[i];
    pinned_handles[i] = driver.add(pinned_names[i], [tight, spec, gc] {
      MachineConfig config = with_cell_trace(tight);
      config.ostruct.gc_policy = gc;
      Env env(config);
      const RunResult r = linked_list_versioned(env, spec, /*cores=*/1);
      return bench::cell_result(env, r.cycles, r.checksum);
    });
  }

  driver.run_all();

  const CellResult& t = driver.result(handles[0]);
  const CellResult& a = driver.result(handles[1]);
  const CellResult& n = driver.result(handles[2]);

  std::printf(
      "Sec. IV-F: GC overhead — sequential, %d ops, 10-element sorted "
      "list\n\n",
      spec.ops);
  rule(6, 13);
  row({"config", "cycles", "GC phases", "OS traps", "blocks freed",
       "vs ample"},
      13);
  rule(6, 13);
  const CellResult* results[3] = {&t, &a, &n};
  for (int i = 0; i < 3; ++i) {
    const CellResult& r = *results[i];
    row({names[i], std::to_string(r.cycles),
         std::to_string(metric(r, "gc/phases")),
         std::to_string(metric(r, "osm/os_traps")),
         std::to_string(metric(r, "osm/blocks_freed")),
         i == 1 ? "0.000%"
                : fmt(100.0 * (static_cast<double>(r.cycles) / a.cycles - 1.0),
                      3) +
                      "%"},
        13);
  }
  rule(6, 13);

  driver.check("tight output matches ample", t.checksum == a.checksum);
  driver.check("ample output matches no-sorting", a.checksum == n.checksum);
  std::printf("\noutputs: tight %s ample, ample %s no-sorting\n",
              t.checksum == a.checksum ? "==" : "!=",
              a.checksum == n.checksum ? "==" : "!=");

  // Policy comparison table. "GC runs" is phases for the paper policy and
  // sweeps for the bounded one — each policy's unit of collection work.
  const CellResult& pp = driver.result(pinned_handles[0]);
  const CellResult& pb = driver.result(pinned_handles[1]);
  std::printf("\nGC policy comparison (tight configuration):\n\n");
  rule(6, 13);
  row({"policy", "cycles", "GC runs", "OS traps", "blocks freed",
       "vs paper"},
      13);
  rule(6, 13);
  const CellResult* pr[2] = {&pp, &pb};
  for (int i = 0; i < 2; ++i) {
    const CellResult& r = *pr[i];
    row({i == 0 ? "paper" : "bounded", std::to_string(r.cycles),
         std::to_string(metric(r, "gc/phases") + metric(r, "gc/sweeps")),
         std::to_string(metric(r, "osm/os_traps")),
         std::to_string(metric(r, "osm/blocks_freed")),
         i == 0 ? "0.000%"
                : fmt(100.0 * (static_cast<double>(r.cycles) / pp.cycles -
                               1.0),
                      3) +
                      "%"},
        13);
  }
  rule(6, 13);

  driver.check("gc=paper output matches gc=bounded",
               pp.checksum == pb.checksum);
  driver.check("gc=bounded reclaims blocks",
               metric(pb, "osm/blocks_freed") > 0);
  std::printf(
      "\nPaper reference (Sec. IV-F): 135 GC phases; tight ~0.1%% slower "
      "than\nample; ample ~0.1%% slower than no-sorting.\n");
  return driver.finish();
}
