// Section IV-F: garbage collection overhead.
//
// Paper setup: a sequential workload of 1000 operations on a sorted linked
// list with 10 elements (the small list magnifies version allocation).
// Three configurations are compared:
//   tight   — a free list small enough to trigger many GC phases,
//   ample   — enough free version blocks to never collect,
//   nosort  — ample, with version-block list sorting disabled.
// Paper result: tight is only ~0.1% slower than ample, which is itself
// ~0.1% slower than nosort (versions are created in order, so sorting does
// almost no work — but it is what enables the GC).
#include <cstdio>

#include "bench_util.hpp"
#include "workloads/linked_list.hpp"

namespace osim {
namespace {

using bench::fmt;
using bench::Scale;

struct GcRun {
  Cycles cycles;
  std::uint64_t phases;
  std::uint64_t traps;
  std::uint64_t freed;
  std::uint64_t checksum;
};

GcRun run_with(const MachineConfig& config, const DsSpec& spec) {
  Env env(config);
  const RunResult r = linked_list_versioned(env, spec, /*cores=*/1);
  return {r.cycles, env.stats().gc_phases, env.stats().os_traps,
          env.stats().blocks_freed, r.checksum};
}

}  // namespace
}  // namespace osim

int main(int argc, char** argv) {
  using namespace osim;
  using namespace osim::bench;
  const Scale scale = Scale::parse(argc, argv);

  DsSpec spec;
  spec.initial_size = 10;
  spec.ops = scale.ops(1000);
  spec.reads_per_write = 1;  // write-heavy: every second op allocates blocks

  MachineConfig tight = make_config(1);
  tight.ostruct.initial_pool_blocks = 80;
  tight.ostruct.trap_grow_blocks = 32;
  tight.ostruct.gc_watermark = 64;

  MachineConfig ample = make_config(1);
  ample.ostruct.initial_pool_blocks = 1 << 20;
  ample.ostruct.gc_watermark = 0;  // never collect

  MachineConfig nosort = ample;
  nosort.ostruct.sorted_lists = false;

  const GcRun t = run_with(tight, spec);
  const GcRun a = run_with(ample, spec);
  const GcRun n = run_with(nosort, spec);

  std::printf(
      "Sec. IV-F: GC overhead — sequential, %d ops, 10-element sorted "
      "list\n\n",
      spec.ops);
  rule(6, 13);
  row({"config", "cycles", "GC phases", "OS traps", "blocks freed",
       "vs ample"},
      13);
  rule(6, 13);
  row({"tight", std::to_string(t.cycles), std::to_string(t.phases),
       std::to_string(t.traps), std::to_string(t.freed),
       fmt(100.0 * (static_cast<double>(t.cycles) / a.cycles - 1.0), 3) + "%"},
      13);
  row({"ample", std::to_string(a.cycles), std::to_string(a.phases),
       std::to_string(a.traps), std::to_string(a.freed), "0.000%"},
      13);
  row({"no-sorting", std::to_string(n.cycles), std::to_string(n.phases),
       std::to_string(n.traps), std::to_string(n.freed),
       fmt(100.0 * (static_cast<double>(n.cycles) / a.cycles - 1.0), 3) + "%"},
      13);
  rule(6, 13);

  std::printf("\noutputs: tight %s ample, ample %s no-sorting\n",
              t.checksum == a.checksum ? "==" : "!=",
              a.checksum == n.checksum ? "==" : "!=");
  std::printf(
      "\nPaper reference (Sec. IV-F): 135 GC phases; tight ~0.1%% slower "
      "than\nample; ample ~0.1%% slower than no-sorting.\n");
  return 0;
}
