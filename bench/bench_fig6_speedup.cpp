// Figure 6: speedup of parallel versioned execution (32 cores) over
// sequential unversioned execution.
//
// Paper setup: small benchmarks start with 1000 elements, large with
// 10000; read-intensive is 4 reads per write (4R-1W), write-intensive is 1
// read per write (1R-1W). Matrix multiplication chains three dense
// matrices; Levenshtein compares strings of length 1000.
//
// Expected shape (paper): matmul and Levenshtein scale near-linearly;
// pointer-chasing structures reach meaningful but sub-linear speedups; the
// red-black tree is the weakest (single writer throttles the root).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "driver.hpp"
#include "workloads/binary_tree.hpp"
#include "workloads/hash_table.hpp"
#include "workloads/levenshtein.hpp"
#include "workloads/linked_list.hpp"
#include "workloads/matmul.hpp"
#include "workloads/rb_tree.hpp"

namespace osim {
namespace {

using bench::CellResult;
using bench::Driver;
using bench::fmt;
using bench::make_config;

constexpr int kCores = 32;

std::string fmt_cycles(Cycles c) { return std::to_string(c); }

struct Ds {
  const char* name;
  RunResult (*seq)(Env&, const DsSpec&);
  RunResult (*par)(Env&, const DsSpec&, int);
  int base_ops;  // scaled by --quick/--full
};

// One table line: a sequential cell and a parallel cell plus its labels.
struct Line {
  std::string name;
  std::string size;
  std::string mix;
  std::size_t seq;
  std::size_t par;
};

void print_line(Driver& driver, const Line& ln) {
  const CellResult& s = driver.result(ln.seq);
  const CellResult& p = driver.result(ln.par);
  const bool ok = s.checksum == p.checksum;
  driver.check(ln.name + "/" + ln.size + "/" + ln.mix +
                   ": versioned output matches sequential",
               ok);
  bench::row({ln.name, ln.size, ln.mix, fmt_cycles(s.cycles),
              fmt_cycles(p.cycles),
              fmt(static_cast<double>(s.cycles) / p.cycles),
              ok ? "match" : "MISMATCH"});
}

}  // namespace
}  // namespace osim

int main(int argc, char** argv) {
  using namespace osim;
  using namespace osim::bench;
  const Options opt = Options::parse(argc, argv);
  require_inline_exec(opt, argv[0]);
  require_paper_gc(opt, argv[0]);
  const Scale scale = opt.scale;
  Driver driver("fig6_speedup", opt);

  const Ds structures[] = {
      {"linked_list", linked_list_sequential, linked_list_versioned, 480},
      {"binary_tree", binary_tree_sequential, binary_tree_versioned, 2000},
      {"hash_table", hash_table_sequential, hash_table_versioned, 2000},
      {"rb_tree", rb_tree_sequential, rb_tree_versioned, 1200},
  };

  std::vector<Line> lines;
  for (const Ds& ds : structures) {
    for (std::size_t size : {std::size_t{1000}, std::size_t{10000}}) {
      for (int rpw : {4, 1}) {
        DsSpec spec;
        spec.initial_size = size;
        spec.ops = scale.ops(ds.base_ops);
        spec.reads_per_write = rpw;
        Line ln;
        ln.name = ds.name;
        ln.size = size == 1000 ? "small" : "large";
        ln.mix = rpw == 4 ? "4R-1W" : "1R-1W";
        const std::string key =
            ln.name + "/" + ln.size + "/" + ln.mix;
        auto seq = ds.seq;
        ln.seq = driver.add(key + "/seq", [seq, spec] {
          Env env(make_config(1));
          const RunResult r = seq(env, spec);
          return bench::cell_result(env, r.cycles, r.checksum);
        });
        auto par = ds.par;
        ln.par = driver.add(key + "/par", [par, spec] {
          Env env(make_config(kCores));
          const RunResult r = par(env, spec, kCores);
          return bench::cell_result(env, r.cycles, r.checksum);
        });
        lines.push_back(ln);
      }
    }
  }
  {
    MatmulSpec spec;
    spec.n = scale.dim(100);
    Line ln;
    ln.name = "matrix_mul";
    ln.size = "n=" + std::to_string(spec.n);
    ln.mix = "-";
    ln.seq = driver.add("matrix_mul/seq", [spec] {
      Env env(make_config(1));
      const RunResult r = matmul_sequential(env, spec);
      return bench::cell_result(env, r.cycles, r.checksum);
    });
    ln.par = driver.add("matrix_mul/par", [spec] {
      Env env(make_config(kCores));
      const RunResult r = matmul_versioned(env, spec, kCores);
      return bench::cell_result(env, r.cycles, r.checksum);
    });
    lines.push_back(ln);
  }
  {
    LevSpec spec;
    spec.n = scale.dim(1000);
    Line ln;
    ln.name = "levenshtein";
    ln.size = "n=" + std::to_string(spec.n);
    ln.mix = "-";
    ln.seq = driver.add("levenshtein/seq", [spec] {
      Env env(make_config(1));
      const RunResult r = levenshtein_sequential(env, spec);
      return bench::cell_result(env, r.cycles, r.checksum);
    });
    ln.par = driver.add("levenshtein/par", [spec] {
      Env env(make_config(kCores));
      const RunResult r = levenshtein_versioned(env, spec, kCores);
      return bench::cell_result(env, r.cycles, r.checksum);
    });
    lines.push_back(ln);
  }

  driver.run_all();

  std::printf(
      "Figure 6: speedup of parallel versioned (32 cores) over sequential "
      "unversioned\n\n");
  rule(7);
  row({"benchmark", "size", "mix", "seq cycles", "par cycles", "speedup",
       "output"});
  rule(7);
  for (const Line& ln : lines) print_line(driver, ln);
  rule(7);
  std::printf(
      "\nPaper reference (Fig. 6): regular codes ~11-25x; linked list up to "
      "~19x;\ntree/hash mid-range; red-black tree lowest (~1-3x).\n");
  return driver.finish();
}
