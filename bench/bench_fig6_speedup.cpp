// Figure 6: speedup of parallel versioned execution (32 cores) over
// sequential unversioned execution.
//
// Paper setup: small benchmarks start with 1000 elements, large with
// 10000; read-intensive is 4 reads per write (4R-1W), write-intensive is 1
// read per write (1R-1W). Matrix multiplication chains three dense
// matrices; Levenshtein compares strings of length 1000.
//
// Expected shape (paper): matmul and Levenshtein scale near-linearly;
// pointer-chasing structures reach meaningful but sub-linear speedups; the
// red-black tree is the weakest (single writer throttles the root).
#include <cstdio>

#include "bench_util.hpp"
#include "workloads/binary_tree.hpp"
#include "workloads/hash_table.hpp"
#include "workloads/levenshtein.hpp"
#include "workloads/linked_list.hpp"
#include "workloads/matmul.hpp"
#include "workloads/rb_tree.hpp"

namespace osim {
namespace {

using bench::fmt;
using bench::make_config;
using bench::Scale;

constexpr int kCores = 32;

std::string fmt_cycles(Cycles c) { return std::to_string(c); }

struct Ds {
  const char* name;
  RunResult (*seq)(Env&, const DsSpec&);
  RunResult (*par)(Env&, const DsSpec&, int);
  int base_ops;  // scaled by --quick/--full
};

void run_ds(const Ds& ds, const Scale& scale) {
  for (std::size_t size : {std::size_t{1000}, std::size_t{10000}}) {
    for (int rpw : {4, 1}) {
      DsSpec spec;
      spec.initial_size = size;
      spec.ops = scale.ops(ds.base_ops);
      spec.reads_per_write = rpw;
      Env seq_env(make_config(1));
      const RunResult s = ds.seq(seq_env, spec);
      Env par_env(make_config(kCores));
      const RunResult p = ds.par(par_env, spec, kCores);
      const bool ok = s.checksum == p.checksum;
      bench::row({ds.name, size == 1000 ? "small" : "large",
                  rpw == 4 ? "4R-1W" : "1R-1W", fmt_cycles(s.cycles),
                  fmt_cycles(p.cycles),
                  fmt(static_cast<double>(s.cycles) / p.cycles),
                  ok ? "match" : "MISMATCH"});
    }
  }
}

}  // namespace
}  // namespace osim

int main(int argc, char** argv) {
  using namespace osim;
  using namespace osim::bench;
  const Scale scale = Scale::parse(argc, argv);

  std::printf(
      "Figure 6: speedup of parallel versioned (32 cores) over sequential "
      "unversioned\n\n");
  rule(7);
  row({"benchmark", "size", "mix", "seq cycles", "par cycles", "speedup",
       "output"});
  rule(7);

  const Ds structures[] = {
      {"linked_list", linked_list_sequential, linked_list_versioned, 480},
      {"binary_tree", binary_tree_sequential, binary_tree_versioned, 2000},
      {"hash_table", hash_table_sequential, hash_table_versioned, 2000},
      {"rb_tree", rb_tree_sequential, rb_tree_versioned, 1200},
  };
  for (const Ds& ds : structures) run_ds(ds, scale);

  {
    MatmulSpec spec;
    spec.n = scale.dim(100);
    Env seq_env(make_config(1));
    const RunResult s = matmul_sequential(seq_env, spec);
    Env par_env(make_config(kCores));
    const RunResult p = matmul_versioned(par_env, spec, kCores);
    row({"matrix_mul", "n=" + std::to_string(spec.n), "-",
         std::to_string(s.cycles), std::to_string(p.cycles),
         fmt(static_cast<double>(s.cycles) / p.cycles),
         s.checksum == p.checksum ? "match" : "MISMATCH"});
  }
  {
    LevSpec spec;
    spec.n = scale.dim(1000);
    Env seq_env(make_config(1));
    const RunResult s = levenshtein_sequential(seq_env, spec);
    Env par_env(make_config(kCores));
    const RunResult p = levenshtein_versioned(par_env, spec, kCores);
    row({"levenshtein", "n=" + std::to_string(spec.n), "-",
         std::to_string(s.cycles), std::to_string(p.cycles),
         fmt(static_cast<double>(s.cycles) / p.cycles),
         s.checksum == p.checksum ? "match" : "MISMATCH"});
  }
  rule(7);
  std::printf(
      "\nPaper reference (Fig. 6): regular codes ~11-25x; linked list up to "
      "~19x;\ntree/hash mid-range; red-black tree lowest (~1-3x).\n");
  return 0;
}
