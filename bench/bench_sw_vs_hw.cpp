// Hardware vs software O-structures (paper Sec. II-C): "O-structures ...
// can be implemented purely as a software runtime abstraction; we've indeed
// started with a software prototype. However, the logic added to versioned
// memory operations incurred too much overhead, indicating hardware support
// is required."
//
// This bench quantifies that claim on this simulator: the same randomized
// store/load-latest/lock mix runs against the hardware manager (versioned<T>)
// and the software runtime (SwOStructure), single-core and multicore.
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "driver.hpp"
#include "runtime/sw_ostructures.hpp"
#include "runtime/versioned.hpp"

namespace osim {
namespace {

using bench::CellResult;
using bench::Driver;
using bench::fmt;
using bench::make_config;

constexpr int kSlots = 64;

/// The op mix each core executes against its own set of slots (keeping the
/// comparison about per-op cost, not inter-core contention).
template <typename StoreFn, typename LoadFn, typename LockFn>
void run_mix(int ops, unsigned seed, StoreFn&& store, LoadFn&& load,
             LockFn&& lock_unlock) {
  std::mt19937 rng(seed);
  std::vector<Ver> next_ver(kSlots, 1);
  for (int i = 0; i < ops; ++i) {
    const int s = static_cast<int>(rng() % kSlots);
    switch (rng() % 4) {
      case 0:
      case 1:
        store(s, next_ver[s]);
        next_ver[s]++;
        break;
      case 2:
        if (next_ver[s] > 1) load(s, rng() % (next_ver[s] - 1) + 1);
        break;
      case 3:
        if (next_ver[s] > 1) {
          // Lock the newest version and rename it onto the next fresh id.
          lock_unlock(s, next_ver[s]);
          next_ver[s]++;
        }
        break;
    }
  }
}

CellResult run_hw(int cores, int ops_per_core) {
  Env env(make_config(cores));
  std::vector<std::vector<versioned<std::uint64_t>>> slots(cores);
  for (int c = 0; c < cores; ++c) {
    for (int s = 0; s < kSlots; ++s) slots[c].emplace_back(env);
  }
  for (CoreId c = 0; c < cores; ++c) {
    env.spawn(c, [&, c] {
      auto& mine = slots[c];
      run_mix(
          ops_per_core, 1000u + c,
          [&](int s, Ver v) { mine[s].store_ver(v, v); },
          [&](int s, Ver v) { mine[s].load_latest(v); },
          [&](int s, Ver fresh) {
            // Distinct locker per core: sharing one task id across cores
            // makes concurrent holds look like one task's nesting (flagged
            // by osim-check as lock-order hazards).
            const TaskId locker = 7 + static_cast<TaskId>(c);
            Ver got = 0;
            mine[s].lock_load_last(fresh - 1, locker, &got);
            mine[s].unlock_ver(got, locker, /*rename_to=*/Ver{fresh});
          });
    });
  }
  return bench::cell_result(env, env.run(), 0);
}

CellResult run_sw(int cores, int ops_per_core) {
  Env env(make_config(cores));
  // Lock words and record lists are timed: the structures live in the arena.
  std::vector<std::vector<SwOStructure*>> slots(cores);
  for (int c = 0; c < cores; ++c) {
    for (int s = 0; s < kSlots; ++s) {
      slots[c].push_back(env.make<SwOStructure>(env));
    }
  }
  for (CoreId c = 0; c < cores; ++c) {
    env.spawn(c, [&, c] {
      auto& mine = slots[c];
      run_mix(
          ops_per_core, 1000u + c,
          [&](int s, Ver v) { mine[s]->store_version(v, v); },
          [&](int s, Ver v) { mine[s]->load_latest(v); },
          [&](int s, Ver fresh) {
            const TaskId locker = 7 + static_cast<TaskId>(c);
            Ver got = 0;
            mine[s]->lock_load_latest(fresh - 1, locker, &got);
            mine[s]->unlock_version(got, locker, Ver{fresh});
          });
    });
  }
  return bench::cell_result(env, env.run(), 0);
}

}  // namespace
}  // namespace osim

int main(int argc, char** argv) {
  using namespace osim;
  using namespace osim::bench;
  const Options opt = Options::parse(argc, argv);
  require_inline_exec(opt, argv[0]);
  require_paper_gc(opt, argv[0]);
  if (opt.backend != BackendKind::kTimed) {
    std::fprintf(stderr,
                 "sw_vs_hw: this figure is about simulated per-op cost; "
                 "only --backend=timed makes sense here\n");
    return 2;
  }
  const int ops = opt.scale.ops(2000);
  Driver driver("sw_vs_hw", opt);

  const int kCoreCounts[] = {1, 8, 32};
  std::vector<std::pair<std::size_t, std::size_t>> pairs;  // (hw, sw) handles
  for (int cores : kCoreCounts) {
    const std::size_t hw = driver.add(
        "hw/cores=" + std::to_string(cores),
        [cores, ops] { return run_hw(cores, ops); });
    const std::size_t sw = driver.add(
        "sw/cores=" + std::to_string(cores),
        [cores, ops] { return run_sw(cores, ops); });
    pairs.emplace_back(hw, sw);
  }

  driver.run_all();

  std::printf(
      "Hardware vs software O-structures (paper Sec. II-C)\n"
      "randomized store / load-latest / lock-rename mix, %d ops per core\n\n",
      ops);
  rule(4, 16);
  row({"cores", "hardware cycles", "software cycles", "sw/hw ratio"}, 16);
  rule(4, 16);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const Cycles hw = driver.result(pairs[i].first).cycles;
    const Cycles sw = driver.result(pairs[i].second).cycles;
    row({std::to_string(kCoreCounts[i]), std::to_string(hw),
         std::to_string(sw), fmt(static_cast<double>(sw) / hw)},
        16);
    driver.check("software runtime no faster than hardware at " +
                     std::to_string(kCoreCounts[i]) + " cores",
                 sw >= hw);
  }
  rule(4, 16);
  std::printf(
      "\nThe software runtime pays lock acquisition, pointer-chasing loads\n"
      "and call overhead per operation — the overhead that made the paper\n"
      "abandon its software prototype for architectural support.\n");
  return driver.finish();
}
