// Shared utilities for the per-figure bench harnesses: command-line scale
// control, machine-config construction, and aligned table printing.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "runtime/env.hpp"
#include "workloads/opgen.hpp"

namespace osim::bench {

/// Workload scale: --quick for smoke runs, --full for paper-sized runs,
/// default is a medium scale that keeps every binary in the minutes range
/// on one host core while preserving the result shapes.
struct Scale {
  double factor = 1.0;

  static Scale parse(int argc, char** argv) {
    Scale s;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) s.factor = 0.25;
      if (std::strcmp(argv[i], "--full") == 0) s.factor = 4.0;
    }
    return s;
  }

  int ops(int base) const {
    const int v = static_cast<int>(base * factor);
    return v < 16 ? 16 : v;
  }
  int dim(int base) const {
    const int v = static_cast<int>(base * (factor >= 1.0 ? 1.0 : 0.5));
    return v < 8 ? 8 : v;
  }
};

inline MachineConfig make_config(int cores) {
  MachineConfig c;
  c.num_cores = cores;
  return c;
}

/// Print a row of "| cell | cell |" with the given widths.
inline void row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("| %-*s ", width, c.c_str());
  std::printf("|\n");
}

inline void rule(std::size_t cells, int width = 14) {
  for (std::size_t i = 0; i < cells; ++i) {
    std::printf("+");
    for (int j = 0; j < width + 2; ++j) std::printf("-");
  }
  std::printf("+\n");
}

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

inline std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

}  // namespace osim::bench
