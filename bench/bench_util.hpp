// Shared utilities for the per-figure bench harnesses: command-line
// handling (scale, host threads, JSON output), machine-config construction,
// and aligned table printing.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/fault_injection.hpp"
#include "runtime/env.hpp"
#include "workloads/opgen.hpp"

namespace osim::bench {

/// Workload scale: --quick for smoke runs, --full for paper-sized runs,
/// default is a medium scale that keeps every binary in the minutes range
/// while preserving the result shapes.
struct Scale {
  double factor = 1.0;

  int ops(int base) const {
    const int v = static_cast<int>(base * factor);
    return v < 16 ? 16 : v;
  }
  int dim(int base) const {
    const int v = static_cast<int>(base * (factor >= 1.0 ? 1.0 : 0.5));
    return v < 8 ? 8 : v;
  }
};

/// Parsed command line shared by every figure bench. Unknown flags are an
/// error: they print usage and exit non-zero instead of being silently
/// ignored.
struct Options {
  Scale scale;
  /// Host threads for the experiment driver; 0 = one per host core.
  int threads = 0;
  /// Write/merge machine-readable results into this JSON file ("" = off).
  std::string json_path;
  /// Stream each cell's version-lifecycle event trace to PATH.<cell-index>
  /// ("" = off). Per-cell suffixing keeps concurrent cells off one file.
  std::string trace_path;
  /// Online protocol checking (osim-check): 0 = off, 1 = --check,
  /// 2 = --check=strict. Checking charges no simulated cycles, so checked
  /// results stay bit-identical; findings land in the JSON and fail the
  /// bench's exit code.
  int check_mode = 0;
  /// Execution backend for every cell. The timed backend reports simulated
  /// cycles; the functional backend reports logical op counts at host
  /// speed. Benches whose figures are *about* simulated time reject
  /// kFunctional after parsing.
  BackendKind backend = BackendKind::kTimed;
  /// How the functional backend executes: inline (default; deterministic
  /// in-order) or concurrent (real host threads on the thread-safe
  /// engine). Only benches built for it accept --exec=concurrent, and it
  /// requires --backend=functional; everyone else rejects it after parsing
  /// (require_inline_exec).
  ExecKind exec = ExecKind::kInline;
  /// Reclamation policy for every cell (the GcPolicy seam,
  /// core/gc_policy.hpp). Benches whose figures reproduce the paper's
  /// collector reject kBounded after parsing (require_paper_gc); only the
  /// policy-comparison bench (bench_gc_overhead) accepts it.
  GcPolicyKind gc = GcPolicyKind::kPaper;
  /// Deterministic fault-injection plan applied to every cell's engine
  /// (core/fault_injection.hpp grammar; "" = no injector attached).
  /// Injection never charges simulated cycles, so "--inject none" (an
  /// attached but inert injector) is bit-identical to no flag at all.
  std::string inject_spec;
  /// Blocked-op timeout for --exec=concurrent cells before the engine
  /// faults kWouldBlock (the concurrent deadlock report).
  std::uint64_t deadlock_timeout_ms = 10000;

  [[noreturn]] static void usage(const char* argv0, int exit_code) {
    std::fprintf(
        stderr,
        "usage: %s [--quick | --full] [--threads N] [--json PATH] "
        "[--trace PATH] [--check[=strict]] [--backend=timed|functional]\n"
        "          [--exec=inline|concurrent] [--gc=paper|bounded]\n"
        "  --quick      smoke-test scale (0.25x ops)\n"
        "  --full       paper-sized runs (4x ops)\n"
        "  --threads N  run experiment cells on N host threads\n"
        "               (default: one per host core; results are\n"
        "               bit-identical for every N)\n"
        "  --json PATH  write results into PATH, merging with any bench\n"
        "               results already recorded there\n"
        "  --trace PATH write each cell's binary event trace to\n"
        "               PATH.<cell-index> (read with tools/osim-report)\n"
        "  --check      validate the O-structure protocol online\n"
        "               (osim-check); findings fail the run and are\n"
        "               recorded in the JSON\n"
        "  --check=strict  as --check, but advisory findings also fail\n"
        "  --backend=timed       cycle-accurate simulation (default)\n"
        "  --backend=functional  host-speed semantic execution; cells\n"
        "               report logical op counts instead of cycles\n"
        "  --exec=inline      in-order execution on one host thread\n"
        "               (default)\n"
        "  --exec=concurrent  truly parallel execution on real host\n"
        "               threads (requires --backend=functional; only\n"
        "               benches built for it accept the flag)\n"
        "  --gc=paper   the paper's watermark/fence collector (default)\n"
        "  --gc=bounded bounded-space range-tracking reclamation; only\n"
        "               the policy-comparison bench (bench_gc_overhead)\n"
        "               accepts it — the figure benches reproduce the\n"
        "               paper's collector and pin --gc=paper\n"
        "  --inject SPEC  deterministic fault injection for every cell\n"
        "               (e.g. pool:0.001,deadlock@3,seed=7; see\n"
        "               core/fault_injection.hpp for the grammar)\n"
        "  --deadlock-timeout-ms N  blocked-op timeout for\n"
        "               --exec=concurrent cells (default 10000)\n",
        argv0);
    std::exit(exit_code);
  }

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strcmp(a, "--quick") == 0) {
        o.scale.factor = 0.25;
      } else if (std::strcmp(a, "--full") == 0) {
        o.scale.factor = 4.0;
      } else if (std::strcmp(a, "--threads") == 0) {
        if (++i >= argc) {
          std::fprintf(stderr, "%s: --threads needs a value\n", argv[0]);
          usage(argv[0], 2);
        }
        char* end = nullptr;
        o.threads = static_cast<int>(std::strtol(argv[i], &end, 10));
        if (end == argv[i] || *end != '\0' || o.threads < 0) {
          std::fprintf(stderr, "%s: bad --threads value '%s'\n", argv[0],
                       argv[i]);
          usage(argv[0], 2);
        }
      } else if (std::strcmp(a, "--json") == 0) {
        if (++i >= argc) {
          std::fprintf(stderr, "%s: --json needs a path\n", argv[0]);
          usage(argv[0], 2);
        }
        o.json_path = argv[i];
      } else if (std::strcmp(a, "--trace") == 0) {
        if (++i >= argc) {
          std::fprintf(stderr, "%s: --trace needs a path\n", argv[0]);
          usage(argv[0], 2);
        }
        o.trace_path = argv[i];
      } else if (std::strcmp(a, "--check") == 0) {
        o.check_mode = 1;
      } else if (std::strcmp(a, "--check=strict") == 0) {
        o.check_mode = 2;
      } else if (std::strcmp(a, "--backend=timed") == 0) {
        o.backend = BackendKind::kTimed;
      } else if (std::strcmp(a, "--backend=functional") == 0) {
        o.backend = BackendKind::kFunctional;
      } else if (std::strncmp(a, "--backend", 9) == 0) {
        std::fprintf(stderr,
                     "%s: bad backend '%s' (use --backend=timed or "
                     "--backend=functional)\n",
                     argv[0], a);
        usage(argv[0], 2);
      } else if (std::strcmp(a, "--exec=inline") == 0) {
        o.exec = ExecKind::kInline;
      } else if (std::strcmp(a, "--exec=concurrent") == 0) {
        o.exec = ExecKind::kConcurrent;
      } else if (std::strncmp(a, "--exec", 6) == 0) {
        std::fprintf(stderr,
                     "%s: bad exec mode '%s' (use --exec=inline or "
                     "--exec=concurrent)\n",
                     argv[0], a);
        usage(argv[0], 2);
      } else if (std::strcmp(a, "--inject") == 0) {
        if (++i >= argc) {
          std::fprintf(stderr, "%s: --inject needs a spec\n", argv[0]);
          usage(argv[0], 2);
        }
        o.inject_spec = argv[i];
        try {
          (void)FaultPlan::parse(o.inject_spec);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
          usage(argv[0], 2);
        }
      } else if (std::strcmp(a, "--deadlock-timeout-ms") == 0) {
        if (++i >= argc) {
          std::fprintf(stderr, "%s: --deadlock-timeout-ms needs a value\n",
                       argv[0]);
          usage(argv[0], 2);
        }
        char* end = nullptr;
        const long long ms = std::strtoll(argv[i], &end, 10);
        if (end == argv[i] || *end != '\0' || ms <= 0) {
          std::fprintf(stderr, "%s: bad --deadlock-timeout-ms value '%s'\n",
                       argv[0], argv[i]);
          usage(argv[0], 2);
        }
        o.deadlock_timeout_ms = static_cast<std::uint64_t>(ms);
      } else if (std::strcmp(a, "--gc=paper") == 0) {
        o.gc = GcPolicyKind::kPaper;
      } else if (std::strcmp(a, "--gc=bounded") == 0) {
        o.gc = GcPolicyKind::kBounded;
      } else if (std::strncmp(a, "--gc", 4) == 0) {
        std::fprintf(stderr,
                     "%s: bad GC policy '%s' (use --gc=paper or "
                     "--gc=bounded)\n",
                     argv[0], a);
        usage(argv[0], 2);
      } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
        usage(argv[0], 0);
      } else {
        std::fprintf(stderr, "%s: unrecognized argument '%s'\n", argv[0], a);
        usage(argv[0], 2);
      }
    }
    return o;
  }
};

/// Reject --exec=concurrent on a bench that has no concurrent section.
/// Called by every bench main right after parse; the two benches that *do*
/// run concurrently skip it and validate the backend pairing themselves.
inline void require_inline_exec(const Options& o, const char* argv0) {
  if (o.exec != ExecKind::kInline) {
    std::fprintf(stderr,
                 "%s: this bench is timed-only; --exec=concurrent is only "
                 "accepted by benches with a concurrent section "
                 "(bench_backend_throughput)\n",
                 argv0);
    std::exit(2);
  }
}

/// Reject --gc=bounded on a bench whose figures reproduce the paper's
/// collector (the simulated cycles are only comparable against the paper
/// under its GC scheme). bench_gc_overhead — the bench whose *point* is
/// the policy comparison — is the one bench that skips this.
inline void require_paper_gc(const Options& o, const char* argv0) {
  if (o.gc != GcPolicyKind::kPaper) {
    std::fprintf(stderr,
                 "%s: this bench reproduces the paper's collector and pins "
                 "--gc=paper; the policy comparison lives in "
                 "bench_gc_overhead\n",
                 argv0);
    std::exit(2);
  }
}

namespace detail {
/// Trace file for the experiment cell running on this host thread
/// ("PATH.<cell-index>"; empty = tracing off). The driver sets it around
/// each cell so config helpers pick it up without threading a parameter
/// through every bench's grid code.
inline thread_local std::string g_cell_trace_path;
/// osim-check mode for the cell running on this host thread (see
/// Options::check_mode); driver-set like g_cell_trace_path.
inline thread_local int g_cell_check_mode = 0;
/// Execution backend for the cell running on this host thread (see
/// Options::backend); driver-set like g_cell_trace_path. Benches that mix
/// backends inside one run (bench_backend_throughput) override it on the
/// config after make_config.
inline thread_local BackendKind g_cell_backend = BackendKind::kTimed;
/// GC policy for the cell running on this host thread (see Options::gc);
/// driver-set like g_cell_trace_path. Cells that pin a policy regardless of
/// the flag (bench_gc_overhead's comparison pair) override it on the config
/// after make_config/with_cell_trace.
inline thread_local GcPolicyKind g_cell_gc = GcPolicyKind::kPaper;
/// Fault-injection spec for the cell running on this host thread (see
/// Options::inject_spec); driver-set like g_cell_trace_path.
inline thread_local std::string g_cell_inject;
}  // namespace detail

inline MachineConfig make_config(int cores) {
  MachineConfig c;
  c.num_cores = cores;
  c.backend = detail::g_cell_backend;
  c.ostruct.trace_path = detail::g_cell_trace_path;
  c.ostruct.check_mode = detail::g_cell_check_mode;
  c.ostruct.gc_policy = detail::g_cell_gc;
  c.ostruct.inject_spec = detail::g_cell_inject;
  return c;
}

/// Re-stamp the cell trace path, check mode, backend and GC policy onto a
/// config that was built *outside* the cell (make_config only sees the
/// thread-locals while the cell runs).
inline MachineConfig with_cell_trace(MachineConfig c) {
  c.backend = detail::g_cell_backend;
  c.ostruct.trace_path = detail::g_cell_trace_path;
  c.ostruct.check_mode = detail::g_cell_check_mode;
  c.ostruct.gc_policy = detail::g_cell_gc;
  c.ostruct.inject_spec = detail::g_cell_inject;
  return c;
}

/// Print a row of "| cell | cell |" with the given widths.
inline void row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("| %-*s ", width, c.c_str());
  std::printf("|\n");
}

inline void rule(std::size_t cells, int width = 14) {
  for (std::size_t i = 0; i < cells; ++i) {
    std::printf("+");
    for (int j = 0; j < width + 2; ++j) std::printf("-");
  }
  std::printf("+\n");
}

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

inline std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

}  // namespace osim::bench
