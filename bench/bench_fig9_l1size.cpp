// Figure 9: sensitivity to L1 cache size, 8 KB .. 128 KB, relative to the
// 32 KB baseline. Three run kinds per benchmark: unversioned sequential
// (U), versioned single core (1T), versioned 32 cores (32T).
//
// Expected shape (paper): "increasing the L1 cache size beyond 32KB has
// limited impact — up to 1.23x and usually much less"; parallel runs are
// the least sensitive. Reported values are speedups vs the 32 KB baseline
// (values below 1 for the smaller L1s).
#include <cstdio>
#include <functional>
#include <iterator>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "driver.hpp"
#include "workloads/binary_tree.hpp"
#include "workloads/hash_table.hpp"
#include "workloads/levenshtein.hpp"
#include "workloads/linked_list.hpp"
#include "workloads/matmul.hpp"
#include "workloads/rb_tree.hpp"

namespace osim {
namespace {

using bench::CellResult;
using bench::Driver;
using bench::fmt;
using bench::make_config;

const std::size_t kL1Kb[] = {8, 16, 32, 64, 128};

MachineConfig config_with_l1(int cores, std::size_t l1_kb) {
  MachineConfig c = make_config(cores);
  c.l1.size_bytes = l1_kb * 1024;
  return c;
}

/// One table line: a cell per L1 size for one (workload, run-kind) pair.
struct Line {
  std::string label;
  std::vector<std::size_t> cells;
};

/// Register `fn` at every L1 size; results print relative to 32 KB.
Line add_sweep(Driver& driver, const std::string& label,
               std::function<CellResult(std::size_t)> fn) {
  Line ln{label, {}};
  for (std::size_t kb : kL1Kb) {
    ln.cells.push_back(driver.add(label + "/l1=" + std::to_string(kb) + "KB",
                                  [fn, kb] { return fn(kb); }));
  }
  return ln;
}

template <typename SeqFn, typename ParFn, typename Spec>
void add_ds(Driver& driver, std::vector<Line>& lines, const char* name,
            SeqFn seq, ParFn par, const Spec& spec) {
  lines.push_back(add_sweep(driver, std::string(name) + " U",
                            [seq, spec](std::size_t kb) {
                              Env env(config_with_l1(1, kb));
                              const RunResult r = seq(env, spec);
                              return bench::cell_result(env, r.cycles,
                                                        r.checksum);
                            }));
  lines.push_back(add_sweep(driver, std::string(name) + " 1T",
                            [par, spec](std::size_t kb) {
                              Env env(config_with_l1(1, kb));
                              const RunResult r = par(env, spec, 1);
                              return bench::cell_result(env, r.cycles,
                                                        r.checksum);
                            }));
  lines.push_back(add_sweep(driver, std::string(name) + " 32T",
                            [par, spec](std::size_t kb) {
                              Env env(config_with_l1(32, kb));
                              const RunResult r = par(env, spec, 32);
                              return bench::cell_result(env, r.cycles,
                                                        r.checksum);
                            }));
}

void print_line(Driver& driver, const Line& ln) {
  const double base =
      static_cast<double>(driver.result(ln.cells[2]).cycles);  // 32 KB entry
  const std::uint64_t sum = driver.result(ln.cells[2]).checksum;
  std::vector<std::string> cells{ln.label};
  for (std::size_t h : ln.cells) {
    cells.push_back(fmt(base / static_cast<double>(driver.result(h).cycles)));
    driver.check(ln.label + ": checksum invariant across L1 sizes",
                 driver.result(h).checksum == sum);
  }
  bench::row(cells, 13);
}

}  // namespace
}  // namespace osim

int main(int argc, char** argv) {
  using namespace osim;
  using namespace osim::bench;
  const Options opt = Options::parse(argc, argv);
  require_inline_exec(opt, argv[0]);
  require_paper_gc(opt, argv[0]);
  const Scale scale = opt.scale;
  Driver driver("fig9_l1size", opt);

  struct DsCase {
    const char* name;
    RunResult (*seq)(Env&, const DsSpec&);
    RunResult (*par)(Env&, const DsSpec&, int);
    int base_ops;
  };
  const DsCase cases[] = {
      {"linked_list", linked_list_sequential, linked_list_versioned, 160},
      {"binary_tree", binary_tree_sequential, binary_tree_versioned, 1200},
      {"hash_table", hash_table_sequential, hash_table_versioned, 1200},
      {"rb_tree", rb_tree_sequential, rb_tree_versioned, 800},
  };
  std::vector<Line> lines;
  for (const DsCase& c : cases) {
    DsSpec spec;
    spec.initial_size = 10000;
    spec.reads_per_write = 4;
    spec.ops = scale.ops(c.base_ops);
    add_ds(driver, lines, c.name, c.seq, c.par, spec);
  }
  {
    LevSpec spec;
    spec.n = scale.dim(600);
    add_ds(
        driver, lines, "levenshtein",
        [](Env& e, const LevSpec& s) { return levenshtein_sequential(e, s); },
        [](Env& e, const LevSpec& s, int cores) {
          return levenshtein_versioned(e, s, cores);
        },
        spec);
  }
  {
    MatmulSpec spec;
    spec.n = scale.dim(72);
    add_ds(
        driver, lines, "matrix_mul",
        [](Env& e, const MatmulSpec& s) { return matmul_sequential(e, s); },
        [](Env& e, const MatmulSpec& s, int cores) {
          return matmul_versioned(e, s, cores);
        },
        spec);
  }

  driver.run_all();

  std::printf(
      "Figure 9: performance vs L1 size, relative to the 32KB baseline\n"
      "(U = unversioned sequential, 1T = versioned 1 core, 32T = versioned "
      "32 cores;\nlarge, read-intensive runs)\n\n");
  rule(6, 13);
  row({"run", "8KB", "16KB", "32KB", "64KB", "128KB"}, 13);
  rule(6, 13);
  for (const Line& ln : lines) print_line(driver, ln);
  rule(6, 13);
  std::printf(
      "\nPaper reference (Fig. 9): growing L1 beyond 32KB gains at most "
      "~1.23x\nand usually much less; 32T runs are the least sensitive.\n");
  return driver.finish();
}
