// Backend throughput: the cost of cycle accuracy.
//
// Runs the same large opgen mixes on the cycle-accurate machine and on the
// functional backend, side by side, and reports host throughput (ops/sec)
// plus the functional speedup. The functional backend executes the same
// versioned ISA against the same VersionStore engine — only the timing
// model differs — so the two cells of each pair must produce identical
// checksums; that cross-backend agreement is recorded as a driver check.
//
// This is deliberately the one bench whose JSON table mixes backends:
// every cell is labelled with its backend and osim-report --validate
// exempts it from the no-mixed-backends rule.
//
// With --backend=functional --exec=concurrent the bench instead measures
// the truly parallel engine (core/concurrent_store.hpp) on real host
// threads: two precomputed op mixes (a contended 50/50 Zipfian store/load
// mix and a 95/5 read-mostly mix) scaled across worker counts
// {1,2,4,8,16,32}. The global op script is generated once per mix and
// partitioned round-robin over the workers, so the set of (slot, version)
// stores — and therefore the final O-structure state — is independent of
// the worker count and every interleaving; the cross-thread-count
// checksum agreement is recorded as a driver check. Results land under
// the separate JSON bench name "backend_throughput_concurrent" with
// per-cell exec/ops/work_seconds/conc_threads fields (schema 2).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/checker.hpp"
#include "bench_util.hpp"
#include "core/concurrent_store.hpp"
#include "core/version_engine.hpp"
#include "driver.hpp"
#include "runtime/concurrent.hpp"
#include "workloads/binary_tree.hpp"
#include "workloads/hash_table.hpp"
#include "workloads/linked_list.hpp"
#include "workloads/rb_tree.hpp"

namespace osim {
namespace {

using bench::CellResult;
using bench::Driver;
using bench::fmt;
using bench::make_config;
using bench::with_cell_trace;

using WorkloadFn = RunResult (*)(Env&, const DsSpec&, int);

struct Mix {
  const char* name;
  WorkloadFn fn;
  std::size_t initial_size;
  int base_ops;
  int cores;
};

// The driver's per-cell wall clock includes Env setup and the metrics dump
// in cell_result — noise at the same order as a whole functional run, so
// ops/sec comes from timing the workload call alone (written into `wall`,
// one slot per cell; cells may run on different host threads).
CellResult run_cell(WorkloadFn fn, const DsSpec& spec, int cores,
                    BackendKind backend, double* wall) {
  MachineConfig config = with_cell_trace(make_config(cores));
  config.backend = backend;
  Env env(config);
  const auto t0 = std::chrono::steady_clock::now();
  const RunResult r = fn(env, spec, cores);
  *wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
  return bench::cell_result(env, r.cycles, r.checksum);
}

// ---------------------------------------------------------------------------
// Concurrent scaling section (--backend=functional --exec=concurrent)

/// One scripted versioned ISA op of the concurrent mixes. Reads name the
/// exact version of the latest *scripted* store on their slot — the
/// paper's forward-dependency discipline — so the program is free of
/// determinacy races (a reader may reach its LOAD-VERSION before the
/// owning worker has issued the store; it then waits on the slot, which is
/// precisely the cross-thread blocking the engine exists to serve).
struct ScriptOp {
  std::uint64_t slot;
  Ver store_version;  ///< nonzero: STORE-VERSION of this id
  Ver read_version;   ///< store_version==0: LOAD-VERSION of this id
};

struct ConcMix {
  const char* name;
  int store_pct;  ///< percentage of stores in the mix
  int base_ops;
};

std::uint64_t splitmix64(std::uint64_t& s) {
  std::uint64_t z = (s += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Deterministic slot data: loads validate against this in the hot loop, so
/// a torn read (wrong data for the version observed) fails the cell.
std::uint64_t slot_data(Ver v, std::uint64_t slot) {
  return (v * 0x9E3779B97F4A7C15ull) ^ (slot * 0xD1B54A32D192ED03ull) ^
         0xA5A5A5A5A5A5A5A5ull;
}

/// Zipfian(1.0) sampler over `n` slots via a cumulative weight table. The
/// hot slots concentrate the contention the mix is named for.
struct Zipf {
  std::vector<double> cum;
  explicit Zipf(std::size_t n) : cum(n) {
    double total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      total += 1.0 / static_cast<double>(i + 1);
      cum[i] = total;
    }
    for (double& c : cum) c /= total;
  }
  std::uint64_t sample(std::uint64_t r) const {
    const double u =
        static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);
    std::size_t lo = 0, hi = cum.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cum[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
};

/// The mix's global op script: generated once, identical for every worker
/// count. Store versions are globally unique and dense from 2 (version 1 is
/// the setup store on every slot), so the final per-slot newest version is
/// interleaving-independent.
std::vector<ScriptOp> make_script(const ConcMix& m, int total_ops,
                                  std::size_t nslots) {
  Zipf zipf(nslots);
  std::uint64_t seed = 0xD00DF00Dull + static_cast<std::uint64_t>(m.store_pct);
  std::vector<ScriptOp> script;
  script.reserve(static_cast<std::size_t>(total_ops));
  std::vector<Ver> last_store(nslots, 1);  // setup stores version 1 everywhere
  Ver next_version = 2;
  for (int j = 0; j < total_ops; ++j) {
    ScriptOp op;
    op.slot = zipf.sample(splitmix64(seed));
    const bool is_store =
        static_cast<int>(splitmix64(seed) % 100) < m.store_pct;
    if (is_store) {
      op.store_version = next_version++;
      op.read_version = 0;
      last_store[op.slot] = op.store_version;
    } else {
      op.store_version = 0;
      op.read_version = last_store[op.slot];
    }
    script.push_back(op);
  }
  return script;
}

/// Run one (mix, threads) cell: partition the script round-robin, one
/// long-lived task per worker, validate every load, and reduce the final
/// state to a worker-count-independent checksum. `batched` switches each
/// worker from per-op virtual calls to one VersionEngine::execute() batch
/// over the facade op records (lowered outside the timed section); the two
/// call styles must agree on every observable, which the section's paired
/// cells check.
CellResult run_concurrent_cell(const std::vector<ScriptOp>& script,
                               std::size_t nslots, int threads,
                               const bench::Options& opt, bool batched) {
  const int check_mode = opt.check_mode;
  ConcurrencyConfig cfg;
  // A reader can legally park until a much-later script position's store
  // lands; on an oversubscribed host give the whole run headroom before
  // declaring deadlock (tunable via --deadlock-timeout-ms).
  cfg.deadlock_timeout_ms = opt.deadlock_timeout_ms;
  // Injected faults are survivable only with rollback + retry; the final
  // state stays script-determined because every aborted attempt is undone
  // before the task re-executes its partition from the top.
  cfg.track_aborts = !opt.inject_spec.empty();
  ConcurrentVersionStore store(cfg);
  telemetry::Tracer tracer;
  analysis::CheckerSink* checker = nullptr;
  if (check_mode != 0) {
    analysis::CheckerOptions copt;
    copt.strict = check_mode == 2;
    // Core ids are store thread-contexts: the allocating main thread plus
    // every worker.
    auto sink = std::make_unique<analysis::CheckerSink>(threads + 1, copt);
    checker = sink.get();
    tracer.add_sink(std::move(sink));
    store.attach_tracer(&tracer);
  }

  const OAddr base = store.alloc(nslots);
  for (std::uint64_t s = 0; s < nslots; ++s) {
    store.store_version(base + 8 * s, 1, slot_data(1, s));
  }
  // Armed only after the host-side setup stores: during setup no task
  // exists to absorb a fault by aborting, so an injected exhaustion would
  // kill the run instead of degrading it.
  std::unique_ptr<FaultInjector> inj;
  if (!opt.inject_spec.empty()) {
    inj = std::make_unique<FaultInjector>(FaultPlan::parse(opt.inject_spec));
    store.attach_fault_injector(inj.get());
  }

  ConcurrentTaskPool pool(store, threads);
  if (cfg.track_aborts) {
    ConcurrentTaskPool::RetryPolicy retry;
    retry.max_retries = 64;
    pool.set_retry_policy(retry);
  }
  // Batched mode: lower each worker's partition to facade op records up
  // front, so the timed section measures execute() dispatch, not lowering.
  struct WorkerBatch {
    std::vector<VersionEngine::Op> ops;
    /// (version, slot) per load, in batch order, for read validation.
    std::vector<std::pair<Ver, std::uint64_t>> expect;
  };
  std::vector<WorkerBatch> batches;
  if (batched) {
    batches.resize(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      WorkerBatch& wb = batches[static_cast<std::size_t>(t)];
      for (std::size_t j = static_cast<std::size_t>(t); j < script.size();
           j += static_cast<std::size_t>(threads)) {
        const ScriptOp& op = script[j];
        VersionEngine::Op o;
        o.addr = base + 8 * op.slot;
        if (op.store_version != 0) {
          o.op = OpCode::kStoreVersion;
          o.version = op.store_version;
          o.data = slot_data(op.store_version, op.slot);
        } else {
          o.op = OpCode::kLoadVersion;
          o.version = op.read_version;
          wb.expect.emplace_back(op.read_version, op.slot);
        }
        wb.ops.push_back(o);
      }
    }
  }
  for (int t = 0; t < threads; ++t) {
    if (batched) {
      pool.create_task(
          static_cast<TaskId>(t + 1), [&batches, &store, t](TaskId) {
            const WorkerBatch& wb = batches[static_cast<std::size_t>(t)];
            VersionEngine::Results res;
            store.execute(wb.ops, res);
            if (!res.faults.empty()) {
              // Surface the first fault to the pool's retry machinery; the
              // rollback + re-execution replays the whole batch, so the
              // final state stays script-determined.
              throw OFault(res.faults.front().kind,
                           res.faults.front().message);
            }
            if (res.reads.size() != wb.expect.size()) {
              throw std::runtime_error("batched execute lost reads");
            }
            for (std::size_t i = 0; i < res.reads.size(); ++i) {
              if (res.reads[i] !=
                  slot_data(wb.expect[i].first, wb.expect[i].second)) {
                throw std::runtime_error(
                    "torn read: slot " +
                    std::to_string(wb.expect[i].second) + " version " +
                    std::to_string(wb.expect[i].first) +
                    " returned inconsistent data");
              }
            }
          });
      continue;
    }
    pool.create_task(static_cast<TaskId>(t + 1),
                     [&script, &store, base, threads, t](TaskId) {
                       for (std::size_t j = static_cast<std::size_t>(t);
                            j < script.size();
                            j += static_cast<std::size_t>(threads)) {
                         const ScriptOp& op = script[j];
                         const OAddr a = base + 8 * op.slot;
                         if (op.store_version != 0) {
                           store.store_version(
                               a, op.store_version,
                               slot_data(op.store_version, op.slot));
                         } else {
                           const std::uint64_t d =
                               store.load_version(a, op.read_version);
                           if (d != slot_data(op.read_version, op.slot)) {
                             throw std::runtime_error(
                                 "torn read: slot " +
                                 std::to_string(op.slot) + " version " +
                                 std::to_string(op.read_version) +
                                 " returned inconsistent data");
                           }
                         }
                       }
                     });
  }
  const double work_seconds = pool.run();

  // Final state must match across worker counts: newest version and its
  // data per slot (the store *set* is script-determined, not
  // schedule-determined).
  std::uint64_t checksum = 0xcbf29ce484222325ull;
  for (std::uint64_t s = 0; s < nslots; ++s) {
    const auto newest = store.newest_version(base + 8 * s);
    const Ver v = newest.value_or(0);
    const std::uint64_t d =
        newest ? store.peek_version(base + 8 * s, v).value_or(0) : 0;
    checksum = (checksum ^ (s * 0x100000001b3ull) ^ v ^ d) *
               0x100000001b3ull;
  }

  const ConcurrentVersionStore::Stats st = store.stats();
  CellResult r;
  r.checksum = checksum;
  r.exec = "concurrent";
  r.backend = "functional";
  r.ops = static_cast<std::uint64_t>(script.size());
  r.work_seconds = work_seconds;
  r.conc_threads = threads;
  r.metrics = bench::Json::object();
  r.metrics["concurrent/ops"] = bench::Json::number(st.ops);
  r.metrics["concurrent/seq_retries"] = bench::Json::number(st.seq_retries);
  r.metrics["concurrent/spin_waits"] = bench::Json::number(st.spin_waits);
  r.metrics["concurrent/parks"] = bench::Json::number(st.parks);
  r.metrics["concurrent/blocks_allocated"] =
      bench::Json::number(st.blocks_allocated);
  r.metrics["concurrent/blocks_reclaimed"] =
      bench::Json::number(st.blocks_reclaimed);
  if (cfg.track_aborts) {
    const ConcurrentTaskPool::RecoveryStats rs = pool.recovery_stats();
    r.metrics["concurrent/aborts"] = bench::Json::number(st.aborts);
    r.metrics["concurrent/aborted_blocks"] =
        bench::Json::number(st.aborted_blocks);
    r.metrics["concurrent/aborted_locks"] =
        bench::Json::number(st.aborted_locks);
    r.metrics["concurrent/retries"] = bench::Json::number(rs.retries);
    r.metrics["concurrent/giveups"] = bench::Json::number(rs.giveups);
    r.metrics["concurrent/backoff_us"] = bench::Json::number(rs.backoff_us);
  }
  if (checker != nullptr) {
    analysis::Checker& c = checker->checker();
    c.finish();
    r.checked = true;
    r.check_errors = c.error_count();
    r.check = bench::Json::object();
    r.check["errors"] = bench::Json::number(c.error_count());
    r.check["warnings"] = bench::Json::number(c.warning_count());
    r.check["total"] = bench::Json::number(c.total_findings());
    bench::Json findings = bench::Json::array();
    for (const analysis::Finding& f : c.findings()) {
      bench::Json jf = bench::Json::object();
      jf["severity"] = bench::Json::string(
          f.severity == analysis::Severity::kError ? "error" : "warning");
      jf["invariant"] = bench::Json::string(analysis::id(f.invariant));
      jf["detail"] = bench::Json::string(f.detail);
      findings.push_back(std::move(jf));
    }
    r.check["findings"] = std::move(findings);
  }
  return r;
}

int run_concurrent_section(const bench::Options& opt) {
  using bench::fmt;
  using bench::row;
  using bench::rule;
  Driver driver("backend_throughput_concurrent", opt);

  const ConcMix conc_mixes[] = {
      {"zipf_contended", 50, 200000},
      {"read_mostly", 5, 200000},
  };
  const int thread_counts[] = {1, 2, 4, 8, 16, 32};
  constexpr std::size_t kSlots = 512;

  std::printf("Concurrent functional engine: sharded VersionStore, seqlock "
              "reads, %d host core(s) available\n\n",
              static_cast<int>(std::thread::hardware_concurrency()));

  for (const ConcMix& m : conc_mixes) {
    const int total_ops = opt.scale.ops(m.base_ops);
    const std::vector<ScriptOp> script = make_script(m, total_ops, kSlots);
    std::vector<std::size_t> handles;
    std::vector<std::size_t> batched_handles;
    for (int threads : thread_counts) {
      handles.push_back(driver.add(
          std::string(m.name) + "/t" + std::to_string(threads),
          [&script, threads, &opt] {
            return run_concurrent_cell(script, kSlots, threads, opt,
                                       /*batched=*/false);
          }));
      // One cell at a time: a scaling measurement must not share the host
      // with a sibling cell's workers.
      driver.run_all();
      // Paired cell: the identical partition through one
      // VersionEngine::execute() batch per worker. Must agree on every
      // observable with the per-op cell; the throughput ratio below is the
      // batching-overhead measurement.
      batched_handles.push_back(driver.add(
          std::string(m.name) + "/t" + std::to_string(threads) + "/batched",
          [&script, threads, &opt] {
            return run_concurrent_cell(script, kSlots, threads, opt,
                                       /*batched=*/true);
          }));
      driver.run_all();
    }

    rule(4, 15);
    row({std::string(m.name) + " thr", "ops", "ops/sec", "speedup vs t1"},
        15);
    rule(4, 15);
    const double base_tput =
        static_cast<double>(driver.result(handles[0]).ops) /
        driver.result(handles[0]).work_seconds;
    bool all_match = true;
    for (std::size_t i = 0; i < handles.size(); ++i) {
      const CellResult& r = driver.result(handles[i]);
      const double tput =
          r.work_seconds > 0
              ? static_cast<double>(r.ops) / r.work_seconds
              : 0.0;
      all_match =
          all_match && r.checksum == driver.result(handles[0]).checksum;
      row({"t=" + std::to_string(r.conc_threads), std::to_string(r.ops),
           fmt(tput, 0), fmt(base_tput > 0 ? tput / base_tput : 0.0, 2) + "x"},
          15);
    }
    rule(4, 15);
    std::printf("\n");
    driver.check(std::string(m.name) +
                     ": final state identical across thread counts",
                 all_match);

    // Batched execute() vs per-op virtual calls, same partitions.
    rule(4, 15);
    row({std::string(m.name) + " thr", "per-op ops/s", "batched ops/s",
         "batched/per-op"},
        15);
    rule(4, 15);
    bool batched_match = true;
    for (std::size_t i = 0; i < handles.size(); ++i) {
      const CellResult& po = driver.result(handles[i]);
      const CellResult& ba = driver.result(batched_handles[i]);
      batched_match = batched_match && ba.checksum == po.checksum;
      const double po_tput =
          po.work_seconds > 0
              ? static_cast<double>(po.ops) / po.work_seconds
              : 0.0;
      const double ba_tput =
          ba.work_seconds > 0
              ? static_cast<double>(ba.ops) / ba.work_seconds
              : 0.0;
      row({"t=" + std::to_string(po.conc_threads), fmt(po_tput, 0),
           fmt(ba_tput, 0),
           fmt(po_tput > 0 ? ba_tput / po_tput : 0.0, 2) + "x"},
          15);
    }
    rule(4, 15);
    std::printf("\n");
    driver.check(std::string(m.name) +
                     ": batched execute() matches per-op final state",
                 batched_match);
  }
  return driver.finish();
}

}  // namespace
}  // namespace osim

int main(int argc, char** argv) {
  using namespace osim;
  using namespace osim::bench;
  const Options opt = Options::parse(argc, argv);
  // Pinned to the paper collector: the concurrent scripts read *exact*
  // versions that may lie above the reading task's own id, outside the
  // read-cap discipline the bounded policy's range rule relies on.
  require_paper_gc(opt, argv[0]);
  if (opt.exec == ExecKind::kConcurrent) {
    if (opt.backend != BackendKind::kFunctional) {
      std::fprintf(stderr,
                   "backend_throughput: --exec=concurrent runs the "
                   "thread-safe functional engine and requires "
                   "--backend=functional\n");
      return 2;
    }
    return run_concurrent_section(opt);
  }
  if (opt.backend != BackendKind::kTimed) {
    std::fprintf(stderr,
                 "backend_throughput: this bench runs both backends per "
                 "mix; --backend selects nothing here\n");
    return 2;
  }
  Driver driver("backend_throughput", opt);

  // Large opgen mixes (workloads/opgen.hpp). The pipelined list at 32
  // simulated cores is the flagship: every hand-over-hand step is a
  // stall/wake fiber round-trip the functional backend never pays.
  const Mix mixes[] = {
      {"linked_list", linked_list_versioned, 100, 15000, 32},
      {"hash_table", hash_table_versioned, 300, 15000, 8},
      {"binary_tree", binary_tree_versioned, 1000, 6000, 8},
      {"rb_tree", rb_tree_versioned, 1000, 6000, 8},
  };
  constexpr std::size_t kMixes = sizeof(mixes) / sizeof(mixes[0]);

  struct Pair {
    const Mix* mix;
    DsSpec spec;
    std::size_t timed, functional;
  };
  std::vector<Pair> pairs;
  std::vector<double> wall(2 * kMixes, 0.0);  // [2i]=timed, [2i+1]=functional
  for (std::size_t i = 0; i < kMixes; ++i) {
    const Mix& m = mixes[i];
    DsSpec spec;
    spec.initial_size = m.initial_size;
    spec.ops = opt.scale.ops(m.base_ops);
    spec.reads_per_write = 3;
    Pair p;
    p.mix = &m;
    p.spec = spec;
    double* tw = &wall[2 * i];
    double* fw = &wall[2 * i + 1];
    p.timed = driver.add(std::string(m.name) + "/timed",
                         [&m, spec, tw] {
                           return run_cell(m.fn, spec, m.cores,
                                           BackendKind::kTimed, tw);
                         });
    p.functional = driver.add(std::string(m.name) + "/functional",
                              [&m, spec, fw] {
                                return run_cell(m.fn, spec, m.cores,
                                                BackendKind::kFunctional, fw);
                              });
    pairs.push_back(p);
  }

  driver.run_all();

  std::printf("Backend throughput: cycle-accurate vs functional, same "
              "VersionStore engine\n\n");
  rule(6, 15);
  row({"mix", "ops", "timed ops/s", "func ops/s", "speedup", "outputs"}, 15);
  rule(6, 15);
  double timed_wall = 0.0, func_wall = 0.0, best = 0.0;
  std::uint64_t total_ops = 0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const Pair& p = pairs[i];
    const CellResult& t = driver.result(p.timed);
    const CellResult& f = driver.result(p.functional);
    const double ops = static_cast<double>(p.spec.ops);
    const double tw = wall[2 * i], fw = wall[2 * i + 1];
    timed_wall += tw;
    func_wall += fw;
    total_ops += static_cast<std::uint64_t>(p.spec.ops);
    const double speedup = fw > 0 ? tw / fw : 0.0;
    if (speedup > best) best = speedup;
    driver.check(std::string(p.mix->name) +
                     ": functional output matches timed",
                 t.checksum == f.checksum);
    row({p.mix->name, std::to_string(p.spec.ops),
         fmt(tw > 0 ? ops / tw : 0.0, 0), fmt(fw > 0 ? ops / fw : 0.0, 0),
         fmt(speedup, 1) + "x",
         t.checksum == f.checksum ? "match" : "MISMATCH"},
        15);
  }
  rule(6, 15);
  std::printf(
      "\naggregate: %llu structure ops; timed %.2fs, functional %.2fs "
      "(%.1fx; best mix %.1fx)\n",
      static_cast<unsigned long long>(total_ops), timed_wall, func_wall,
      func_wall > 0 ? timed_wall / func_wall : 0.0, best);
  std::printf(
      "(\"ops\" are structure-level operations; each expands to many "
      "versioned ISA ops)\n");
  return driver.finish();
}
