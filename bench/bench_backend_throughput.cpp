// Backend throughput: the cost of cycle accuracy.
//
// Runs the same large opgen mixes on the cycle-accurate machine and on the
// functional backend, side by side, and reports host throughput (ops/sec)
// plus the functional speedup. The functional backend executes the same
// versioned ISA against the same VersionStore engine — only the timing
// model differs — so the two cells of each pair must produce identical
// checksums; that cross-backend agreement is recorded as a driver check.
//
// This is deliberately the one bench whose JSON table mixes backends:
// every cell is labelled with its backend and osim-report --validate
// exempts it from the no-mixed-backends rule.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "driver.hpp"
#include "workloads/binary_tree.hpp"
#include "workloads/hash_table.hpp"
#include "workloads/linked_list.hpp"
#include "workloads/rb_tree.hpp"

namespace osim {
namespace {

using bench::CellResult;
using bench::Driver;
using bench::fmt;
using bench::make_config;
using bench::with_cell_trace;

using WorkloadFn = RunResult (*)(Env&, const DsSpec&, int);

struct Mix {
  const char* name;
  WorkloadFn fn;
  std::size_t initial_size;
  int base_ops;
  int cores;
};

// The driver's per-cell wall clock includes Env setup and the metrics dump
// in cell_result — noise at the same order as a whole functional run, so
// ops/sec comes from timing the workload call alone (written into `wall`,
// one slot per cell; cells may run on different host threads).
CellResult run_cell(WorkloadFn fn, const DsSpec& spec, int cores,
                    BackendKind backend, double* wall) {
  MachineConfig config = with_cell_trace(make_config(cores));
  config.backend = backend;
  Env env(config);
  const auto t0 = std::chrono::steady_clock::now();
  const RunResult r = fn(env, spec, cores);
  *wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
  return bench::cell_result(env, r.cycles, r.checksum);
}

}  // namespace
}  // namespace osim

int main(int argc, char** argv) {
  using namespace osim;
  using namespace osim::bench;
  const Options opt = Options::parse(argc, argv);
  if (opt.backend != BackendKind::kTimed) {
    std::fprintf(stderr,
                 "backend_throughput: this bench runs both backends per "
                 "mix; --backend selects nothing here\n");
    return 2;
  }
  Driver driver("backend_throughput", opt);

  // Large opgen mixes (workloads/opgen.hpp). The pipelined list at 32
  // simulated cores is the flagship: every hand-over-hand step is a
  // stall/wake fiber round-trip the functional backend never pays.
  const Mix mixes[] = {
      {"linked_list", linked_list_versioned, 100, 15000, 32},
      {"hash_table", hash_table_versioned, 300, 15000, 8},
      {"binary_tree", binary_tree_versioned, 1000, 6000, 8},
      {"rb_tree", rb_tree_versioned, 1000, 6000, 8},
  };
  constexpr std::size_t kMixes = sizeof(mixes) / sizeof(mixes[0]);

  struct Pair {
    const Mix* mix;
    DsSpec spec;
    std::size_t timed, functional;
  };
  std::vector<Pair> pairs;
  std::vector<double> wall(2 * kMixes, 0.0);  // [2i]=timed, [2i+1]=functional
  for (std::size_t i = 0; i < kMixes; ++i) {
    const Mix& m = mixes[i];
    DsSpec spec;
    spec.initial_size = m.initial_size;
    spec.ops = opt.scale.ops(m.base_ops);
    spec.reads_per_write = 3;
    Pair p;
    p.mix = &m;
    p.spec = spec;
    double* tw = &wall[2 * i];
    double* fw = &wall[2 * i + 1];
    p.timed = driver.add(std::string(m.name) + "/timed",
                         [&m, spec, tw] {
                           return run_cell(m.fn, spec, m.cores,
                                           BackendKind::kTimed, tw);
                         });
    p.functional = driver.add(std::string(m.name) + "/functional",
                              [&m, spec, fw] {
                                return run_cell(m.fn, spec, m.cores,
                                                BackendKind::kFunctional, fw);
                              });
    pairs.push_back(p);
  }

  driver.run_all();

  std::printf("Backend throughput: cycle-accurate vs functional, same "
              "VersionStore engine\n\n");
  rule(6, 15);
  row({"mix", "ops", "timed ops/s", "func ops/s", "speedup", "outputs"}, 15);
  rule(6, 15);
  double timed_wall = 0.0, func_wall = 0.0, best = 0.0;
  std::uint64_t total_ops = 0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const Pair& p = pairs[i];
    const CellResult& t = driver.result(p.timed);
    const CellResult& f = driver.result(p.functional);
    const double ops = static_cast<double>(p.spec.ops);
    const double tw = wall[2 * i], fw = wall[2 * i + 1];
    timed_wall += tw;
    func_wall += fw;
    total_ops += static_cast<std::uint64_t>(p.spec.ops);
    const double speedup = fw > 0 ? tw / fw : 0.0;
    if (speedup > best) best = speedup;
    driver.check(std::string(p.mix->name) +
                     ": functional output matches timed",
                 t.checksum == f.checksum);
    row({p.mix->name, std::to_string(p.spec.ops),
         fmt(tw > 0 ? ops / tw : 0.0, 0), fmt(fw > 0 ? ops / fw : 0.0, 0),
         fmt(speedup, 1) + "x",
         t.checksum == f.checksum ? "match" : "MISMATCH"},
        15);
  }
  rule(6, 15);
  std::printf(
      "\naggregate: %llu structure ops; timed %.2fs, functional %.2fs "
      "(%.1fx; best mix %.1fx)\n",
      static_cast<unsigned long long>(total_ops), timed_wall, func_wall,
      func_wall > 0 ? timed_wall / func_wall : 0.0, best);
  std::printf(
      "(\"ops\" are structure-level operations; each expands to many "
      "versioned ISA ops)\n");
  return driver.finish();
}
