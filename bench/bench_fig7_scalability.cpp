// Figure 7: scalability analysis — speedup of parallel versioned execution
// over *sequential versioned* (1-core versioned) execution, for the large,
// read-intensive configuration of every benchmark.
//
// Expected shape (paper): matmul and Levenshtein scale near-linearly (up to
// ~25x at 32 cores); linked list reaches ~19x; binary tree and hash table
// land mid-range; the red-black tree flattens early (single writer).
#include <cstdio>

#include "bench_util.hpp"
#include "workloads/binary_tree.hpp"
#include "workloads/hash_table.hpp"
#include "workloads/levenshtein.hpp"
#include "workloads/linked_list.hpp"
#include "workloads/matmul.hpp"
#include "workloads/rb_tree.hpp"

namespace osim {
namespace {

using bench::fmt;
using bench::make_config;
using bench::Scale;

const int kCoreSweep[] = {1, 2, 4, 8, 16, 32};

using ParFn = RunResult (*)(Env&, const DsSpec&, int);

void sweep_ds(const char* name, ParFn par, const DsSpec& spec) {
  std::vector<std::string> cells{name};
  Cycles base = 0;
  for (int cores : kCoreSweep) {
    Env env(make_config(cores));
    const Cycles c = par(env, spec, cores).cycles;
    if (cores == 1) base = c;
    cells.push_back(fmt(static_cast<double>(base) / c));
  }
  bench::row(cells, 11);
}

}  // namespace
}  // namespace osim

int main(int argc, char** argv) {
  using namespace osim;
  using namespace osim::bench;
  const Scale scale = Scale::parse(argc, argv);

  std::printf(
      "Figure 7: scalability — speedup over sequential (1-core) versioned;\n"
      "large (10000 elements), read-intensive (4R-1W) runs\n\n");
  rule(7, 11);
  row({"benchmark", "1", "2", "4", "8", "16", "32"}, 11);
  rule(7, 11);

  {
    DsSpec spec;
    spec.initial_size = 10000;
    spec.reads_per_write = 4;
    spec.ops = scale.ops(480);
    sweep_ds("linked_list", linked_list_versioned, spec);
  }
  {
    DsSpec spec;
    spec.initial_size = 10000;
    spec.reads_per_write = 4;
    spec.ops = scale.ops(2000);
    sweep_ds("binary_tree", binary_tree_versioned, spec);
    sweep_ds("hash_table", hash_table_versioned, spec);
  }
  {
    DsSpec spec;
    spec.initial_size = 10000;
    spec.reads_per_write = 4;
    spec.ops = scale.ops(1200);
    sweep_ds("rb_tree", rb_tree_versioned, spec);
  }
  {
    LevSpec spec;
    spec.n = scale.dim(1000);
    std::vector<std::string> cells{"levenshtein"};
    Cycles base = 0;
    for (int cores : kCoreSweep) {
      Env env(make_config(cores));
      const Cycles c = levenshtein_versioned(env, spec, cores).cycles;
      if (cores == 1) base = c;
      cells.push_back(fmt(static_cast<double>(base) / c));
    }
    row(cells, 11);
  }
  {
    MatmulSpec spec;
    spec.n = scale.dim(100);
    std::vector<std::string> cells{"matrix_mul"};
    Cycles base = 0;
    for (int cores : kCoreSweep) {
      Env env(make_config(cores));
      const Cycles c = matmul_versioned(env, spec, cores).cycles;
      if (cores == 1) base = c;
      cells.push_back(fmt(static_cast<double>(base) / c));
    }
    row(cells, 11);
  }
  rule(7, 11);
  std::printf(
      "\nPaper reference (Fig. 7): matmul/Levenshtein near-linear to ~25x;\n"
      "linked list ~19x; tree/hash mid; red-black tree flattens lowest.\n");
  return 0;
}
