// Figure 7: scalability analysis — speedup of parallel versioned execution
// over *sequential versioned* (1-core versioned) execution, for the large,
// read-intensive configuration of every benchmark.
//
// Expected shape (paper): matmul and Levenshtein scale near-linearly (up to
// ~25x at 32 cores); linked list reaches ~19x; binary tree and hash table
// land mid-range; the red-black tree flattens early (single writer).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "driver.hpp"
#include "workloads/binary_tree.hpp"
#include "workloads/hash_table.hpp"
#include "workloads/levenshtein.hpp"
#include "workloads/linked_list.hpp"
#include "workloads/matmul.hpp"
#include "workloads/rb_tree.hpp"

namespace osim {
namespace {

using bench::CellResult;
using bench::Driver;
using bench::fmt;
using bench::make_config;

const int kCoreSweep[] = {1, 2, 4, 8, 16, 32};

using ParFn = RunResult (*)(Env&, const DsSpec&, int);

// Handles for one workload's row across the core sweep.
struct Row {
  const char* name;
  std::vector<std::size_t> cells;
};

Row add_ds(Driver& driver, const char* name, ParFn par, const DsSpec& spec) {
  Row r{name, {}};
  for (int cores : kCoreSweep) {
    r.cells.push_back(driver.add(
        std::string(name) + "/cores=" + std::to_string(cores),
        [par, spec, cores] {
          Env env(make_config(cores));
          const RunResult res = par(env, spec, cores);
          return bench::cell_result(env, res.cycles, res.checksum);
        }));
  }
  return r;
}

void print_row(Driver& driver, const Row& r) {
  std::vector<std::string> cells{r.name};
  const Cycles base = driver.result(r.cells[0]).cycles;
  const std::uint64_t sum = driver.result(r.cells[0]).checksum;
  for (std::size_t h : r.cells) {
    cells.push_back(fmt(static_cast<double>(base) / driver.result(h).cycles));
    driver.check(std::string(r.name) + ": checksum invariant across cores",
                 driver.result(h).checksum == sum);
  }
  bench::row(cells, 11);
}

}  // namespace
}  // namespace osim

int main(int argc, char** argv) {
  using namespace osim;
  using namespace osim::bench;
  const Options opt = Options::parse(argc, argv);
  require_inline_exec(opt, argv[0]);
  require_paper_gc(opt, argv[0]);
  const Scale scale = opt.scale;
  Driver driver("fig7_scalability", opt);

  std::vector<Row> rows;
  {
    DsSpec spec;
    spec.initial_size = 10000;
    spec.reads_per_write = 4;
    spec.ops = scale.ops(480);
    rows.push_back(add_ds(driver, "linked_list", linked_list_versioned, spec));
  }
  {
    DsSpec spec;
    spec.initial_size = 10000;
    spec.reads_per_write = 4;
    spec.ops = scale.ops(2000);
    rows.push_back(add_ds(driver, "binary_tree", binary_tree_versioned, spec));
    rows.push_back(add_ds(driver, "hash_table", hash_table_versioned, spec));
  }
  {
    DsSpec spec;
    spec.initial_size = 10000;
    spec.reads_per_write = 4;
    spec.ops = scale.ops(1200);
    rows.push_back(add_ds(driver, "rb_tree", rb_tree_versioned, spec));
  }
  Row lev{"levenshtein", {}};
  {
    LevSpec spec;
    spec.n = scale.dim(1000);
    for (int cores : kCoreSweep) {
      lev.cells.push_back(driver.add(
          "levenshtein/cores=" + std::to_string(cores), [spec, cores] {
            Env env(make_config(cores));
            const RunResult res = levenshtein_versioned(env, spec, cores);
            return bench::cell_result(env, res.cycles, res.checksum);
          }));
    }
    rows.push_back(lev);
  }
  Row mm{"matrix_mul", {}};
  {
    MatmulSpec spec;
    spec.n = scale.dim(100);
    for (int cores : kCoreSweep) {
      mm.cells.push_back(driver.add(
          "matrix_mul/cores=" + std::to_string(cores), [spec, cores] {
            Env env(make_config(cores));
            const RunResult res = matmul_versioned(env, spec, cores);
            return bench::cell_result(env, res.cycles, res.checksum);
          }));
    }
    rows.push_back(mm);
  }

  driver.run_all();

  std::printf(
      "Figure 7: scalability — speedup over sequential (1-core) versioned;\n"
      "large (10000 elements), read-intensive (4R-1W) runs\n\n");
  rule(7, 11);
  row({"benchmark", "1", "2", "4", "8", "16", "32"}, 11);
  rule(7, 11);
  for (const Row& r : rows) print_row(driver, r);
  rule(7, 11);
  std::printf(
      "\nPaper reference (Fig. 7): matmul/Levenshtein near-linear to ~25x;\n"
      "linked list ~19x; tree/hash mid; red-black tree flattens lowest.\n");
  return driver.finish();
}
