// Table II: the experimental platform. Prints the modelled configuration
// and validates, with micro-probes on a live machine, that the hierarchy
// actually delivers the configured latencies.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "driver.hpp"
#include "runtime/env.hpp"

namespace osim {
namespace {

using bench::CellResult;
using bench::Driver;
using bench::make_config;

CellResult l1_hit_probe() {
  Env env(make_config(1));
  const Addr a = 0x10000;
  Cycles hit = 0;
  env.spawn(0, [&] {
    mach().mem_access(a, AccessType::kRead);  // cold fill
    const Cycles t0 = mach().now();
    mach().mem_access(a, AccessType::kRead);
    hit = mach().now() - t0;
  });
  env.run();
  return bench::cell_result(env, hit, 0);
}

CellResult cold_probe() {
  Env env(make_config(1));
  Cycles cold = 0;
  env.spawn(0, [&] {
    const Cycles t0 = mach().now();
    mach().mem_access(0x20000, AccessType::kRead);
    cold = mach().now() - t0;
  });
  env.run();
  return bench::cell_result(env, cold, 0);
}

CellResult l2_hit_probe() {
  // Fill past L1 capacity, then re-touch: L2 hit.
  Env env(make_config(1));
  Cycles l2 = 0;
  env.spawn(0, [&] {
    const std::size_t lines = 2 * env.config().l1.size_bytes / kLineBytes;
    for (std::size_t i = 0; i < lines; ++i) {
      mach().mem_access(0x40000 + i * kLineBytes, AccessType::kRead);
    }
    const Cycles t0 = mach().now();
    mach().mem_access(0x40000, AccessType::kRead);
    l2 = mach().now() - t0;
  });
  env.run();
  return bench::cell_result(env, l2, 0);
}

CellResult remote_probe() {
  // Remote dirty line: write on core 1, read on core 0.
  Env env(make_config(2));
  Cycles remote = 0;
  WaitList gate;
  bool ready = false;
  env.spawn(1, [&] {
    mach().mem_access(0x80000, AccessType::kWrite);
    ready = true;
    mach().wake_all(gate, 0);
  });
  env.spawn(0, [&] {
    if (!ready) mach().block_on(gate);
    const Cycles t0 = mach().now();
    mach().mem_access(0x80000, AccessType::kRead);
    remote = mach().now() - t0;
  });
  env.run();
  return bench::cell_result(env, remote, 0);
}

CellResult direct_probe() {
  // Versioned direct access: L1-resident compressed line.
  Env env(make_config(1));
  Cycles direct = 0;
  env.spawn(0, [&] {
    const OAddr a = env.osm().alloc();
    env.osm().store_version(a, 1, 42);
    env.osm().load_version(a, 1);  // install + warm
    const Cycles t0 = mach().now();
    env.osm().load_version(a, 1);
    direct = mach().now() - t0;
  });
  env.run();
  return bench::cell_result(env, direct, 0);
}

}  // namespace
}  // namespace osim

int main(int argc, char** argv) {
  using namespace osim;
  using namespace osim::bench;
  const Options opt = Options::parse(argc, argv);
  require_inline_exec(opt, argv[0]);
  require_paper_gc(opt, argv[0]);
  if (opt.backend != BackendKind::kTimed) {
    std::fprintf(stderr,
                 "table2_platform: latency probes drive the simulated "
                 "memory hierarchy; only --backend=timed makes sense here\n");
    return 2;
  }
  Driver driver("table2_platform", opt);

  const MachineConfig c = make_config(32);

  struct Probe {
    const char* name;
    CellResult (*fn)();
    Cycles expected;
  };
  const Probe probes[] = {
      {"L1 hit", l1_hit_probe, c.l1.hit_latency},
      {"cold (L2 miss + DRAM)", cold_probe,
       c.l1.hit_latency + c.l2_hit_latency + c.dram_latency},
      {"L2 hit", l2_hit_probe, c.l1.hit_latency + c.l2_hit_latency},
      {"remote L1 forward", remote_probe,
       c.l1.hit_latency + c.remote_l1_latency},
      {"versioned direct hit", direct_probe, c.l1.hit_latency},
  };
  std::vector<std::size_t> handles;
  for (const Probe& p : probes) {
    auto fn = p.fn;
    handles.push_back(driver.add(p.name, [fn] { return fn(); }));
  }

  driver.run_all();

  std::printf("Table II: the experimental platform (modelled)\n\n");
  std::printf("  Processor   %d-wide in-order, %.0f GHz, %d cores\n",
              c.issue_width, c.ghz, c.num_cores);
  std::printf("  L1 I/D      %zu KB, %d-way, %d B lines, %llu-cycle hit\n",
              c.l1.size_bytes / 1024, c.l1.ways, c.l1.line_bytes,
              static_cast<unsigned long long>(c.l1.hit_latency));
  std::printf(
      "  L2          %.1f MB x %d cores (shared, inclusive), %d-way, "
      "%llu-cycle hit\n",
      c.l2_per_core_bytes / (1024.0 * 1024.0), c.num_cores, c.l2_ways,
      static_cast<unsigned long long>(c.l2_hit_latency));
  std::printf("  Memory      %llu-cycle latency (60 ns at 2 GHz)\n",
              static_cast<unsigned long long>(c.dram_latency));
  std::printf("  Remote L1   %llu cycles (comparable to LLC, Sec. IV-D)\n\n",
              static_cast<unsigned long long>(c.remote_l1_latency));

  std::printf("Self-check of delivered latencies:\n\n");
  rule(3, 22);
  row({"probe", "measured cycles", "expected"}, 22);
  rule(3, 22);
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const Cycles measured = driver.result(handles[i]).cycles;
    row({probes[i].name, std::to_string(measured),
         std::to_string(probes[i].expected)},
        22);
    driver.check(std::string(probes[i].name) + " latency as configured",
                 measured == probes[i].expected);
  }
  rule(3, 22);
  return driver.finish();
}
